"""Spatial-grid-partitioned SINR resolution (the sparse physics layer).

The dense kernels of :mod:`repro.sinr.physics` resolve a slot by
reducing a ``(k, n)`` received-power block over *every* node, which
walls sweeps at the ``O(n²)`` gain/distance matrices.  This module
breaks that wall with the grid-hash idea the deployment generators
already use for min-separation checks
(:class:`repro.geometry.deployment._SeparationGrid`), lifted to the
physics layer: nodes hash into square cells, and a slot touches only
the cells the slot's transmitters can reach.

Two modes, selected by :class:`~repro.sinr.params.SparseResolution`:

``exact``
    *Candidate pruning only.*  A listener can decode transmitter ``v``
    only if ``d(v, u) <= R`` — a lone transmitter at distance ``> R``
    already fails ``signal >= β·N``, and interference/extra senders
    only lower the SINR.  The candidate listeners of a slot are
    therefore the union of the transmitters' precomputed within-range
    neighborhoods; for exactly those listeners the resolver evaluates
    the *same* formulas in the *same* operand order as the dense
    kernels (distances via the ``einsum`` difference form of
    :func:`~repro.geometry.points.pairwise_distances`, interference as
    a sequential ``sum(axis=0)`` over all ``k`` transmitter rows).
    Results are **bit-identical** to the dense path.

    The float-level exclusion argument for non-candidates: the dense
    kernel's interference total is a sequential sum of non-negative
    addends, so the computed ``total - powers`` and ``+ noise`` terms
    are each ``>= 0`` / ``>= noise`` *exactly* (rounding a true value
    that is >= a representable bound never lands below that bound).
    Hence the computed SINR is at most ``p/N`` up to one division
    rounding, and a listener beyond the candidate radius — which
    carries a relative safety margin of 1e-9 over R, about 4·10³ ulps
    — has ``p`` short of ``β·N`` by far more than the few ulps float
    evaluation can recover.  The same bound drives the stochastic
    candidate cut on realized per-link powers.

``farfield``
    *Approximate interference under a per-link relative-error bound.*
    Interference from cells farther than a derived threshold ``T`` is
    replaced by ``count · P/d(center)^α`` per cell; cells nearer than
    ``T`` are resolved term by term (exactly), as is the signal (from
    the precomputed neighbor-edge gains).  With cell side ``s`` a
    member is at most ``δ = s·√2/2`` from its cell center, so each
    far-term's relative error is at most ``(1 + δ/T)^α − 1`` (the
    underestimate side is smaller, by convexity of ``(1+x)^α``).
    Choosing ``T = δ / ((1+ε_I)^{1/α} − 1)`` with ``ε_I = ε/(1+ε)``
    caps the interference error at ``ε_I·I`` and hence the SINR error
    at ``ε_I/(1−ε_I) = ε`` exactly — the contract
    :class:`~repro.sinr.params.SparseResolution.epsilon` promises.
    ``T`` is additionally clamped to at least the candidate radius
    plus ``δ``, so the intended sender of any candidate link always
    lands in a near (exactly-resolved) cell and its own term can be
    subtracted from the listener's total without approximation error.

    Because approximate SINRs may cross the β threshold in either
    direction within the ε-band, two senders can (only there) both
    clear β at one listener; the resolver then keeps the strongest
    (ties broken toward the lowest sender id) instead of raising the
    β>1-uniqueness error.  Decode sets equal the dense reference
    whenever no true SINR lies within ε of β — the property the test
    harness pins.

    Under an *active* channel model the realized per-link powers are
    already materialized densely per slot (fading draws are per-link),
    so aggregation has nothing left to save; farfield mode then falls
    back to the exact realized-power path and the ε bound holds
    degenerately with zero error.

Resolvers are immutable once built (arrays frozen read-only) and cache
per (coordinates, params) in :class:`repro.experiments.cache
.ArtifactCache`; dynamic-topology epochs rebuild them through the same
cache (``Channel.advance_topology``), so trials sharing a trajectory
share each epoch's grid.

Decode output ordering matches the dense kernels exactly — pairs sorted
by (transmitter row, listener id), the row-major ``np.nonzero`` order —
so reception dicts iterate identically and the flat arrays concatenate
into the batched kernel's layout.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.points import PointSet
from repro.sinr.params import SINRParameters
from repro.sinr.physics import _check_unique_listeners, received_power

__all__ = ["SparseResolver", "CANDIDATE_MARGIN"]

# Relative safety margin on the candidate radius / realized-power cut:
# wide enough (≈4·10³ ulps) that float evaluation can never promote an
# excluded listener past β, narrow enough that the 3×3-cell neighborhood
# walk stays exact.
CANDIDATE_MARGIN = 1e-9

_EMPTY = np.empty(0, dtype=np.intp)


def _ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[i], starts[i] + counts[i])``."""
    counts = np.asarray(counts, dtype=np.intp)
    total = int(counts.sum())
    if total == 0:
        return _EMPTY
    ends = np.cumsum(counts)
    shift = np.repeat(
        np.asarray(starts, dtype=np.intp) - np.concatenate(([0], ends[:-1])),
        counts,
    )
    return np.arange(total, dtype=np.intp) + shift


def _block_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(len(a), len(b))`` distances, bit-identical to the entries of
    :func:`~repro.geometry.points.pairwise_distances` (same difference
    form, same einsum contraction, same sqrt)."""
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def _pair_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-row distances between aligned ``(m, 2)`` coordinate arrays.

    The two-term ``x² + y²`` contraction is order-insensitive in float
    arithmetic (addition of two terms is commutative), so entries are
    bit-identical to the matrix form above.
    """
    diff = a - b
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


class SparseResolver:
    """Grid-partitioned slot resolver for one frozen deployment.

    Construction cost is ``O(n + edges)`` where *edges* counts the
    within-candidate-radius pairs — the sparse analogue of the dense
    gain matrix, computed once per (deployment, params) and shared via
    the artifact cache.  Per-slot cost is then proportional to the
    slot's *reachable* population instead of ``n``.
    """

    def __init__(self, points: PointSet, params: SINRParameters) -> None:
        spec = params.sparse
        if spec is None:
            raise ValueError(
                "params.sparse must be set to build a SparseResolver"
            )
        self.params = params
        self.spec = spec
        self.coords = np.ascontiguousarray(points.coords, dtype=np.float64)
        self.coords.setflags(write=False)
        self.n = int(self.coords.shape[0])
        self.candidate_radius = params.transmission_range * (
            1.0 + CANDIDATE_MARGIN
        )
        self._power_cut = (
            params.beta * params.noise * (1.0 - CANDIDATE_MARGIN)
        )
        self._build_neighbors()
        self.cell_size: float | None = None
        self.far_threshold: float | None = None
        if spec.mode == "farfield":
            self._build_farfield_grid()

    # -- construction ------------------------------------------------------

    def _build_neighbors(self) -> None:
        """CSR adjacency of all ordered pairs within the candidate
        radius, with each edge's link gain precomputed (bit-identical
        to the dense gain-matrix entry)."""
        n = self.n
        radius = self.candidate_radius
        # A search-cell side 1% over the radius guarantees (with slack
        # far beyond float division rounding) that any within-radius
        # pair lands in adjacent cells of the 3×3 neighborhood walk.
        side = radius * 1.01
        cells = np.floor(self.coords / side).astype(np.int64)
        keys, inverse = np.unique(cells, axis=0, return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        counts = np.bincount(inverse, minlength=keys.shape[0])
        starts = np.concatenate(([0], np.cumsum(counts)))
        lookup = {
            (int(x), int(y)): c for c, (x, y) in enumerate(keys.tolist())
        }
        src_parts: list[np.ndarray] = []
        dst_parts: list[np.ndarray] = []
        for c in range(keys.shape[0]):
            a = order[starts[c] : starts[c + 1]]
            cx, cy = int(keys[c, 0]), int(keys[c, 1])
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    d = lookup.get((cx + dx, cy + dy))
                    if d is None:
                        continue
                    b = order[starts[d] : starts[d + 1]]
                    dist = _block_distances(self.coords[a], self.coords[b])
                    mask = dist <= radius
                    if c == d:
                        np.fill_diagonal(mask, False)
                    ii, jj = np.nonzero(mask)
                    if ii.size:
                        src_parts.append(a[ii])
                        dst_parts.append(b[jj])
        if src_parts:
            src = np.concatenate(src_parts)
            dst = np.concatenate(dst_parts)
            edge_order = np.lexsort((dst, src))
            src = src[edge_order]
            dst = dst[edge_order]
        else:
            src = _EMPTY
            dst = _EMPTY
        self._nbr = np.ascontiguousarray(dst, dtype=np.intp)
        self._indptr = np.searchsorted(
            src, np.arange(n + 1, dtype=np.intp)
        ).astype(np.intp)
        gains = received_power(
            self.params,
            _pair_distances(self.coords[src], self.coords[dst]),
        )
        self._edge_gain = np.ascontiguousarray(gains, dtype=np.float64)
        for arr in (self._nbr, self._indptr, self._edge_gain):
            arr.setflags(write=False)

    def _build_farfield_grid(self) -> None:
        """Aggregation grid for farfield mode: per-node cell ids, cell
        centers, and the exact/aggregate distance threshold ``T``."""
        params = self.params
        side = self.spec.cell_size
        if side is None:
            side = params.transmission_range / 2.0
        self.cell_size = float(side)
        delta = self.cell_size * math.sqrt(2.0) / 2.0
        eps_i = self.spec.epsilon / (1.0 + self.spec.epsilon)
        t = delta / ((1.0 + eps_i) ** (1.0 / params.alpha) - 1.0)
        # Clamp: the intended sender of any candidate link must sit in
        # a near cell (so its exact term is in the subtractable total);
        # the strict `>=` far test plus this margin guarantees it.
        self.far_threshold = max(
            t, (self.candidate_radius + delta) * (1.0 + 1e-12)
        )
        cells = np.floor(self.coords / self.cell_size).astype(np.int64)
        keys, inverse = np.unique(cells, axis=0, return_inverse=True)
        self._node_cell = np.ascontiguousarray(inverse, dtype=np.intp)
        self._cell_centers = np.ascontiguousarray(
            (keys.astype(np.float64) + 0.5) * self.cell_size
        )
        self._node_cell.setflags(write=False)
        self._cell_centers.setflags(write=False)

    # -- shared helpers ----------------------------------------------------

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted within-candidate-radius neighbor ids of one node."""
        return self._nbr[self._indptr[node] : self._indptr[node + 1]]

    def _candidate_listeners(self, tx: np.ndarray) -> np.ndarray:
        """Sorted union of the transmitters' neighborhoods, minus the
        transmitters themselves (half-duplex)."""
        indptr = self._indptr
        parts = [
            self._nbr[indptr[v] : indptr[v + 1]] for v in tx.tolist()
        ]
        cand = np.unique(np.concatenate(parts)) if parts else _EMPTY
        if cand.size:
            cand = cand[~np.isin(cand, tx, assume_unique=True)]
        return cand

    def _decide(
        self, tx: np.ndarray, cand: np.ndarray, powers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """The dense kernel's SINR decision over a pruned ``(k, m)``
        block — operand-for-operand the computation of
        :func:`~repro.sinr.physics.sinr_matrix` restricted to the
        candidate columns, so surviving decodes carry identical bits."""
        params = self.params
        total = powers.sum(axis=0)
        interference = total[None, :] - powers
        sinr = powers / (interference + params.noise)
        ok = sinr >= params.beta
        k_idx, u_idx = np.nonzero(ok)
        listeners = cand[u_idx]
        _check_unique_listeners(listeners)
        return listeners, tx[k_idx]

    # -- exact mode --------------------------------------------------------

    def _exact_flat(
        self, tx: np.ndarray, link_powers: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        if link_powers is not None:
            # Stochastic channel: candidates are the nodes whose
            # *realized* power from some transmitter could clear β·N
            # (same float-exclusion argument as the geometric cut).
            cols = np.flatnonzero(
                (link_powers >= self._power_cut).any(axis=0)
            )
            cand = cols[~np.isin(cols, tx, assume_unique=True)]
            if cand.size == 0:
                return _EMPTY, _EMPTY
            # The fancy-indexed gather is F-contiguous; the C-contiguous
            # copy restores the dense kernel's bit-exact column sums.
            powers = np.ascontiguousarray(link_powers[:, cand])
            return self._decide(tx, cand, powers)
        cand = self._candidate_listeners(tx)
        if cand.size == 0:
            return _EMPTY, _EMPTY
        dist = _block_distances(self.coords[tx], self.coords[cand])
        powers = received_power(self.params, dist)
        return self._decide(tx, cand, powers)

    # -- farfield mode -----------------------------------------------------

    def _candidate_links(
        self, tx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All (transmitter-row, listener) pairs within the candidate
        radius, with their exact link gains: ``(k_pos, u, gain)``."""
        indptr = self._indptr
        counts = indptr[tx + 1] - indptr[tx]
        k_pos = np.repeat(np.arange(tx.size, dtype=np.intp), counts)
        edges = _ranges(indptr[tx], counts)
        u = self._nbr[edges]
        gain = self._edge_gain[edges]
        keep = ~np.isin(u, tx)
        return k_pos[keep], u[keep], gain[keep]

    def _farfield_interference(
        self, tx: np.ndarray, cand: np.ndarray
    ) -> np.ndarray:
        """Approximate total interference at each candidate listener:
        exact per-term sums for near cells, center-evaluated aggregates
        for far cells."""
        params = self.params
        uc, cell_inv, cell_counts = np.unique(
            self._node_cell[tx], return_inverse=True, return_counts=True
        )
        centers = self._cell_centers[uc]
        dist_cell = _block_distances(self.coords[cand], centers)
        far = dist_cell >= self.far_threshold
        aggregate = received_power(params, dist_cell) * cell_counts[None, :]
        total = np.where(far, aggregate, 0.0).sum(axis=1)
        near_u, near_c = np.nonzero(~far)
        if near_u.size:
            member_order = np.argsort(cell_inv, kind="stable")
            starts = np.concatenate(([0], np.cumsum(cell_counts)))
            member_counts = cell_counts[near_c]
            rep_u = np.repeat(near_u, member_counts)
            v_near = tx[member_order[_ranges(starts[near_c], member_counts)]]
            dist_near = _pair_distances(
                self.coords[cand[rep_u]], self.coords[v_near]
            )
            total = total + np.bincount(
                rep_u,
                weights=received_power(params, dist_near),
                minlength=cand.size,
            )
        return total

    def _farfield_links(
        self, tx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Approximate SINR of every candidate link: ``(k_pos, u, sinr)``."""
        params = self.params
        k_pos, u, gain = self._candidate_links(tx)
        if u.size == 0:
            return _EMPTY, _EMPTY, np.empty(0)
        cand, u_pos = np.unique(u, return_inverse=True)
        total = self._farfield_interference(tx, cand)
        # The sender's own near-cell term is in `total` (the threshold
        # clamp guarantees near membership); subtract it and clamp the
        # denominator at the noise floor — summation-order noise on a
        # hugely dominant signal term could otherwise cancel below zero.
        denom = np.maximum((total[u_pos] - gain) + params.noise, params.noise)
        return k_pos, u, gain / denom

    def _farfield_flat(
        self, tx: np.ndarray, link_powers: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        if link_powers is not None:
            # Realized powers are already dense per slot; resolve them
            # exactly (ε holds with zero error).
            return self._exact_flat(tx, link_powers)
        k_pos, u, sinr = self._farfield_links(tx)
        ok = sinr >= self.params.beta
        k_pos, u, sinr = k_pos[ok], u[ok], sinr[ok]
        if u.size:
            # Within the ε-band two approximate SINRs can both clear β
            # at one listener; keep the strongest (lowest sender id on
            # exact ties) — a deterministic rule, not an error.
            order = np.lexsort((k_pos, -sinr, u))
            u_sorted = u[order]
            first = np.ones(u_sorted.size, dtype=bool)
            first[1:] = u_sorted[1:] != u_sorted[:-1]
            sel = order[first]
            sel = sel[np.lexsort((u[sel], k_pos[sel]))]
            k_pos, u = k_pos[sel], u[sel]
        return u, tx[k_pos]

    # -- public API --------------------------------------------------------

    def resolve_flat(
        self,
        transmitters: np.ndarray,
        link_powers: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One slot's decodes as ``(listeners, senders)`` index arrays.

        Ordered exactly like the dense kernels' ``np.nonzero`` output:
        by transmitter row first, listener id second.  ``link_powers``
        optionally supplies the realized ``(k, n)`` received powers of
        an active channel model (``Channel.slot_link_powers``).
        """
        tx = np.asarray(transmitters, dtype=np.intp)
        if tx.size == 0:
            return _EMPTY, _EMPTY
        if self.spec.mode == "farfield":
            return self._farfield_flat(tx, link_powers)
        return self._exact_flat(tx, link_powers)

    def resolve(
        self,
        transmitters: np.ndarray,
        link_powers: np.ndarray | None = None,
    ) -> dict[int, int]:
        """One slot's decodes as the ``listener -> sender`` dict of
        :func:`~repro.sinr.physics.successful_receptions` (same pairs,
        same insertion order)."""
        listeners, senders = self.resolve_flat(
            transmitters, link_powers=link_powers
        )
        return dict(zip(listeners.tolist(), senders.tolist()))

    def link_sinr_estimates(
        self, transmitters: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Deterministic per-candidate-link SINR: ``(senders, listeners,
        sinr)`` for every within-range (transmitter, listener) pair.

        In farfield mode these are the approximate values the decode
        decision uses — the quantity the ε contract bounds; in exact
        mode they are the dense kernel's exact values.  Test harness
        API (the property suite compares them against
        :func:`~repro.sinr.physics.sinr_matrix`).
        """
        tx = np.asarray(transmitters, dtype=np.intp)
        if tx.size == 0:
            return _EMPTY, _EMPTY, np.empty(0)
        if self.spec.mode == "farfield":
            k_pos, u, sinr = self._farfield_links(tx)
            return tx[k_pos], u, sinr
        cand = self._candidate_listeners(tx)
        if cand.size == 0:
            return _EMPTY, _EMPTY, np.empty(0)
        dist = _block_distances(self.coords[tx], self.coords[cand])
        powers = received_power(self.params, dist)
        total = powers.sum(axis=0)
        sinr = powers / ((total[None, :] - powers) + self.params.noise)
        k_idx, u_idx = np.nonzero(np.ones_like(sinr, dtype=bool))
        return tx[k_idx], cand[u_idx], sinr[k_idx, u_idx]

    def describe(self) -> str:
        """Compact summary for reports and reprs."""
        edges = int(self._nbr.size)
        base = (
            f"SparseResolver(n={self.n}, mode={self.spec.mode}, "
            f"edges={edges}"
        )
        if self.spec.mode == "farfield":
            base += (
                f", eps={self.spec.epsilon:g}, cell={self.cell_size:g}, "
                f"T={self.far_threshold:g}"
            )
        return base + ")"
