"""SINR model parameters (paper §4.2).

The physical model is determined by four constants:

* ``power`` (P): the uniform transmission power of every node,
* ``alpha`` (α): the path-loss exponent, typically in (2, 6],
* ``beta`` (β): the minimum SINR threshold for successful decoding, > 1,
* ``noise`` (N): the ambient noise floor, > 0.

From these the *transmission range* ``R = (P / (β·N))^(1/α)`` follows: the
maximum distance at which a lone transmitter is decodable.  ``R_a = a·R``
for ``a ∈ (0, 1]`` gives the *a-strong* link radius; the paper works with
the strong connectivity graphs induced by ``R_{1-ε}`` and ``R_{1-2ε}``.

The paper's channel is *deterministic*: received power is exactly
``P / d^α``.  :class:`ChannelModel` describes the stochastic extensions
this reproduction adds on top — per-link Rayleigh fading, per-link
log-normal shadowing, and heterogeneous per-node transmit powers — to
stress-test the local-broadcast guarantees under channels the paper's
analysis does not cover.  The model is *configuration only*: the draws
themselves live in :mod:`repro.sinr.physics` /
:mod:`repro.sinr.channel` and consume dedicated per-trial RNG streams
(see ``Channel.bind_trial_seed``), so a disabled model leaves every
deterministic run byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["ChannelModel", "SparseResolution", "SINRParameters"]


@dataclass(frozen=True)
class SparseResolution:
    """Spatial-grid SINR resolution configuration (disabled by default).

    Selects the grid-partitioned resolver of :mod:`repro.sinr.sparse`
    instead of the dense ``(k, n)`` reduction.  Two modes:

    ``"exact"``
        Grid-pruned candidate discovery, dense arithmetic on the
        survivors — decode-for-decode *and bit-for-bit* identical to the
        dense kernels (the non-candidate listeners are provably
        undecodable, see the module docstring of
        :mod:`repro.sinr.sparse`).
    ``"farfield"``
        Beyond-radius interference contributions are replaced by
        per-cell aggregates evaluated at cell centers.  Every candidate
        link's SINR then carries a relative error of at most ``epsilon``
        (the per-term bound is chosen so the end-to-end SINR error
        telescopes to exactly ε); decode decisions can differ from the
        dense reference only for links whose true SINR lies within the
        ε-band of the β threshold.

    ``cell_size`` overrides the far-field aggregation grid's cell side
    (``None`` derives a default from the transmission range).  It has
    no effect in exact mode, but stays part of the cache key either
    way so resolvers are never shared across differing grids.

    ``min_n`` is the dense/sparse crossover: deployments smaller than
    this never build a resolver and resolve through the dense kernels
    instead (``BENCH_sparse.json`` records the sparse paths *slower*
    than dense at n=1000 — grid bookkeeping dominates when the whole
    deployment fits in a few cells).  The default sits between the
    measured n=1000 regression and the n=2500 win; ``min_n=1`` forces
    the resolver on for any size (how the small-n equivalence tests
    keep exercising the sparse path).
    """

    mode: str = "exact"
    epsilon: float = 0.05
    cell_size: float | None = None
    min_n: int = 2000

    def __post_init__(self) -> None:
        if self.mode not in ("exact", "farfield"):
            raise ValueError(
                f"sparse mode must be 'exact' or 'farfield'; got {self.mode!r}"
            )
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError("sparse epsilon must be in (0, 1)")
        if self.cell_size is not None and self.cell_size <= 0:
            raise ValueError("sparse cell_size must be positive")
        if self.min_n < 1:
            raise ValueError("sparse min_n must be >= 1")

    def describe(self) -> str:
        """Compact summary for experiment reports."""
        if self.mode == "exact":
            return "sparse-exact"
        return f"sparse-farfield(eps={self.epsilon:g})"


@dataclass(frozen=True)
class ChannelModel:
    """Stochastic channel configuration (disabled by default).

    Attributes
    ----------
    rayleigh:
        When True, every (sender, listener) link of every slot gets an
        independent Rayleigh fast-fading power multiplier (|h|² ~
        Exp(1), unit mean) drawn fresh each slot.
    shadowing_sigma_db:
        Standard deviation (in dB) of per-link log-normal shadowing.
        Drawn once per trial and symmetrized (shadowing is a property
        of the obstacle field between two positions, so the multiplier
        is reciprocal); 0 disables.
    power_spread:
        Heterogeneous transmit power: each node's power is ``P·m`` with
        ``m`` drawn uniformly from ``[1, power_spread]`` once per trial.
        1 keeps the paper's uniform-power assumption.
    """

    rayleigh: bool = False
    shadowing_sigma_db: float = 0.0
    power_spread: float = 1.0

    def __post_init__(self) -> None:
        if self.shadowing_sigma_db < 0:
            raise ValueError("shadowing_sigma_db must be >= 0")
        if self.power_spread < 1.0:
            raise ValueError("power_spread must be >= 1")

    @property
    def is_active(self) -> bool:
        """Does this model change anything at all?"""
        return (
            self.rayleigh
            or self.shadowing_sigma_db > 0.0
            or self.power_spread > 1.0
        )

    def describe(self) -> str:
        """Compact summary for experiment reports."""
        if not self.is_active:
            return "deterministic"
        parts = []
        if self.rayleigh:
            parts.append("rayleigh")
        if self.shadowing_sigma_db > 0:
            parts.append(f"shadow={self.shadowing_sigma_db:g}dB")
        if self.power_spread > 1.0:
            parts.append(f"spread={self.power_spread:g}")
        return "+".join(parts)


@dataclass(frozen=True)
class SINRParameters:
    """Immutable bundle of physical-model constants.

    The default ``epsilon`` is the user-chosen strong-connectivity slack
    of §4.2; it must satisfy ``0 < 2*epsilon < 1`` so that both G_{1-ε}
    and G_{1-2ε} are meaningful.

    ``channel_model`` optionally attaches a stochastic
    :class:`ChannelModel` (fading / shadowing / heterogeneous power).
    The derived ranges and graphs below stay defined by the
    deterministic constants — G_{1-ε} is the *measurement* graph the
    guarantees are stated over, while the stochastic multipliers
    perturb only the per-slot reception physics.

    ``sparse`` optionally selects the spatial-grid resolver of
    :mod:`repro.sinr.sparse` (:class:`SparseResolution`).  Like the
    channel model it changes *how* slots resolve, never what the
    deployment-derived graphs and metrics mean, so the artifact cache
    strips it from its keys; unlike the channel model, its farfield
    mode may change reception outcomes (within the ε contract).
    """

    power: float = 1.0
    alpha: float = 3.0
    beta: float = 1.5
    noise: float = 1.0e-4
    epsilon: float = 0.1
    channel_model: ChannelModel | None = None
    sparse: SparseResolution | None = None

    def __post_init__(self) -> None:
        if self.power <= 0:
            raise ValueError("power must be positive")
        if self.alpha <= 2:
            raise ValueError("alpha must exceed 2 (paper assumption, §4.6)")
        if self.beta <= 1:
            raise ValueError("beta must exceed 1 (paper §4.2)")
        if self.noise <= 0:
            raise ValueError("noise must be positive")
        if not 0.0 < 2.0 * self.epsilon < 1.0:
            raise ValueError("epsilon must satisfy 0 < 2*epsilon < 1")

    @property
    def transmission_range(self) -> float:
        """R = (P / (β N))^(1/α): lone-transmitter decoding radius."""
        return (self.power / (self.beta * self.noise)) ** (1.0 / self.alpha)

    def range_at(self, a: float) -> float:
        """R_a = a · R for a strength fraction ``a``."""
        if a <= 0:
            raise ValueError("strength fraction must be positive")
        return a * self.transmission_range

    @property
    def strong_range(self) -> float:
        """R_{1-ε}: the strong-link radius of the communication graph G."""
        return self.range_at(1.0 - self.epsilon)

    @property
    def approx_range(self) -> float:
        """R_{1-2ε}: the radius of the approximation graph G̃ (Def. 7.1)."""
        return self.range_at(1.0 - 2.0 * self.epsilon)

    def with_range(self, target_range: float) -> "SINRParameters":
        """Return parameters rescaled so the transmission range R equals
        ``target_range``, keeping α, β and N fixed (adjusts P).

        Used by the lower-bound constructions, which prescribe the range
        (e.g. ``R_{1-ε} = 10·Δ`` in Theorem 6.1).
        """
        if target_range <= 0:
            raise ValueError("target_range must be positive")
        new_power = self.beta * self.noise * target_range**self.alpha
        return replace(self, power=new_power)

    def with_strong_range(self, target_strong_range: float) -> "SINRParameters":
        """Rescale so that R_{1-ε} equals ``target_strong_range``."""
        return self.with_range(target_strong_range / (1.0 - self.epsilon))

    def lambda_ratio(self, min_distance: float) -> float:
        """Λ: ratio of R_{1-ε} to the minimum node distance (§4.3).

        Λ upper-bounds the ratio between the longest and shortest edge of
        G_{1-ε}; the algorithms assume a polynomial bound on Λ is known.
        """
        if min_distance <= 0:
            raise ValueError("min_distance must be positive")
        return max(self.strong_range / min_distance, 1.0)

    def describe(self) -> str:
        """One-line human-readable summary for experiment reports."""
        model = ""
        if self.channel_model is not None and self.channel_model.is_active:
            model = f", model={self.channel_model.describe()}"
        if self.sparse is not None:
            model += f", {self.sparse.describe()}"
        return (
            f"SINR(P={self.power:g}, alpha={self.alpha:g}, beta={self.beta:g}, "
            f"N={self.noise:g}, eps={self.epsilon:g}, R={self.transmission_range:.3g}, "
            f"R1-eps={self.strong_range:.3g}{model})"
        )

    @staticmethod
    def max_contention_bound(lam: float) -> float:
        """Ñ_x = 4Λ²: packing bound on nodes within transmission range.

        Theorem 5.1 instantiates Algorithm B.1 with this bound, derived
        from packing nodes at pairwise distance >= d_min into a disk of
        radius R_1.
        """
        if lam < 1:
            raise ValueError("Lambda must be >= 1")
        return 4.0 * lam * lam

    def log_star(self, x: float) -> int:
        """Iterated logarithm log*(x), used in the f_approg bound."""
        if x < 0:
            raise ValueError("x must be >= 0")
        count = 0
        while x > 1.0:
            x = math.log2(x)
            count += 1
        return count
