"""Vectorized SINR computations (paper Eq. 1).

A transmission from ``v`` is decoded at ``u`` iff

    SINR_u(v) = (P / d(v,u)^α) / (Σ_{w ∈ S\\{u,v}} P / d(w,u)^α + N) >= β,

where ``S`` is the set of concurrently transmitting nodes.  Because β > 1,
at most one transmitter can be decoded by any listener in any slot, so the
reception outcome of a slot is a partial function listener → transmitter.

All functions take a precomputed pairwise-distance matrix so the per-slot
cost is one masked matrix reduction (numpy), keeping thousand-node
simulations fast.  Two further fast paths serve the batched experiment
engine (:mod:`repro.experiments`):

* the received-power (gain) matrix ``P / d^α`` can be computed once per
  deployment with :func:`gain_matrix` and passed back in through the
  ``gains`` parameter, removing the per-slot ``d**α`` power evaluation;
* :func:`successful_receptions_batch` resolves one slot of *many
  independent trials at once*, taking the per-trial ``(n, n)`` distance
  matrices stacked into a ``(trials, n, n)`` tensor and reducing the
  whole batch with a handful of numpy operations.

The batched kernel is engineered to be *bit-identical* to the sequential
one: per-trial interference totals are reduced over exactly the same
addends in the same order as :func:`sinr_matrix`, so a batched experiment
reproduces a sequential run decode-for-decode.
"""

from __future__ import annotations

import numpy as np

from repro.sinr.params import SINRParameters

__all__ = [
    "received_power",
    "gain_matrix",
    "stack_distances",
    "interference_at",
    "sinr_matrix",
    "sinr_of_link",
    "successful_receptions",
    "successful_receptions_batch",
]

# Distances below this are clamped to avoid division blow-ups; the paper
# normalizes minimum node distance to 1, so this never binds on valid
# layouts and only guards against degenerate test inputs.
_MIN_DISTANCE = 1.0e-9


def received_power(
    params: SINRParameters,
    dist: np.ndarray,
    power: float | np.ndarray | None = None,
) -> np.ndarray:
    """P / d^α for an array of distances (elementwise).

    Distances are first clamped from below to ``_MIN_DISTANCE`` (1e-9):
    the paper normalizes the minimum node distance to 1 (§4.2), so the
    clamp never binds on valid layouts and exists only so degenerate
    inputs (coincident points, zero diagonals) yield astronomically
    large-but-finite powers instead of NaN/inf.

    ``power`` overrides the uniform model power; it may be an array
    broadcastable against ``dist`` (per-sender powers).  The paper's
    algorithms all use uniform power (§4.2), but the Theorem 6.1 lower
    bound holds *even under arbitrary power assignment*, which the
    corresponding experiment exercises through this hook.

    ``dist`` may have any shape, including the batched ``(trials, n, n)``
    distance tensor of the experiment engine — the computation is purely
    elementwise.
    """
    d = np.maximum(np.asarray(dist, dtype=np.float64), _MIN_DISTANCE)
    p = params.power if power is None else power
    return p / d**params.alpha


def gain_matrix(params: SINRParameters, distances: np.ndarray) -> np.ndarray:
    """The full uniform-power link-gain matrix ``G[v, u] = P / d(v,u)^α``.

    This is the deployment-derived artifact the experiment engine
    memoizes: computing it once removes the per-slot ``d**α`` power
    evaluation from every subsequent slot resolution (pass the result to
    :func:`sinr_matrix` / :func:`successful_receptions` /
    :func:`successful_receptions_batch` via their ``gains`` parameter).

    Diagonal entries correspond to the clamped self-distance (see
    :func:`received_power` for the ``_MIN_DISTANCE`` clamp) and are huge;
    they are never read by the reception kernels, which exclude
    transmitters from listening (half-duplex).  ``distances`` may also be
    a ``(trials, n, n)`` stack, giving a ``(trials, n, n)`` gain tensor.
    """
    return received_power(params, distances)


def stack_distances(matrices) -> np.ndarray:
    """Stack per-trial ``(n, n)`` distance matrices into ``(trials, n, n)``.

    All matrices must share one shape; trials over differently-sized
    deployments cannot be batched together (the engine groups plans by
    node count before calling this).
    """
    mats = [np.asarray(m, dtype=np.float64) for m in matrices]
    if not mats:
        raise ValueError("need at least one distance matrix")
    shape = mats[0].shape
    if len(shape) != 2 or shape[0] != shape[1]:
        raise ValueError(f"distance matrices must be square; got {shape!r}")
    for m in mats[1:]:
        if m.shape != shape:
            raise ValueError(
                f"cannot stack distance matrices of shapes {shape!r} "
                f"and {m.shape!r}; batch trials share one node count"
            )
    return np.stack(mats)


def interference_at(
    params: SINRParameters,
    distances: np.ndarray,
    transmitters: np.ndarray,
    listener: int,
    exclude: int | None = None,
) -> float:
    """Total interference power at ``listener`` from ``transmitters``.

    ``transmitters`` is an index array; ``exclude`` (the intended sender)
    is removed from the sum.  The listener itself never contributes
    (a node cannot interfere with its own reception because it cannot
    transmit and listen in the same slot).
    """
    tx = np.asarray(transmitters, dtype=np.intp)
    mask = tx != listener
    if exclude is not None:
        mask &= tx != exclude
    others = tx[mask]
    if others.size == 0:
        return 0.0
    powers = received_power(params, distances[others, listener])
    return float(powers.sum())


def sinr_of_link(
    params: SINRParameters,
    distances: np.ndarray,
    transmitters: np.ndarray,
    sender: int,
    listener: int,
) -> float:
    """SINR of the (sender → listener) link under the given transmitter set."""
    if sender == listener:
        raise ValueError("sender and listener must differ")
    signal = float(received_power(params, distances[sender, listener]))
    interference = interference_at(
        params, distances, transmitters, listener, exclude=sender
    )
    return signal / (interference + params.noise)


def sinr_matrix(
    params: SINRParameters,
    distances: np.ndarray,
    transmitters: np.ndarray,
    tx_powers: np.ndarray | None = None,
    gains: np.ndarray | None = None,
) -> np.ndarray:
    """SINR of every (transmitter, node) pair in one shot.

    Returns an array of shape ``(len(transmitters), n)`` where entry
    ``(k, u)`` is the SINR of transmitter ``transmitters[k]`` at node
    ``u``, with the convention that a node's SINR at itself is 0 (it
    cannot hear while sending).  ``tx_powers`` optionally assigns a
    transmission power to each transmitter (aligned with
    ``transmitters``); omitted means the uniform model power.

    ``gains`` optionally supplies the precomputed uniform-power gain
    matrix of :func:`gain_matrix`; passing it skips the per-call power
    evaluation without changing a single output bit (the gathered rows
    hold exactly the values the direct computation would produce).  It is
    ignored when ``tx_powers`` is given, since per-sender powers cannot
    reuse the uniform-power cache.
    """
    tx = np.asarray(transmitters, dtype=np.intp)
    n = distances.shape[0]
    if tx.size == 0:
        return np.zeros((0, n))
    if tx_powers is not None:
        tx_powers = np.asarray(tx_powers, dtype=np.float64)
        if tx_powers.shape != tx.shape:
            raise ValueError("tx_powers must align with transmitters")
        if (tx_powers <= 0).any():
            raise ValueError("powers must be positive")
        per_sender = tx_powers[:, None]
    else:
        per_sender = None
    # (k, u): power of transmitter k received at u.
    if per_sender is None and gains is not None:
        powers = gains[tx, :]
    else:
        powers = received_power(params, distances[tx, :], power=per_sender)
    total = powers.sum(axis=0)  # (n,) total received power at each node
    # Interference for transmitter k at u excludes k's own contribution.
    interference = total[None, :] - powers
    sinr = powers / (interference + params.noise)
    # Half-duplex: a transmitter cannot decode anything, so every column
    # belonging to a transmitting node is set to 0 (it would otherwise
    # hold a meaningless self-interference artifact).
    sinr[:, tx] = 0.0
    return sinr


def successful_receptions(
    params: SINRParameters,
    distances: np.ndarray,
    transmitters: np.ndarray,
    listeners: np.ndarray | None = None,
    tx_powers: np.ndarray | None = None,
    gains: np.ndarray | None = None,
) -> dict[int, int]:
    """Resolve one slot: which listener decodes which transmitter.

    Returns a dict ``listener -> transmitter`` containing exactly the
    pairs whose SINR meets β.  Nodes in ``transmitters`` never appear as
    keys (half-duplex).  If ``listeners`` is given, only those nodes are
    considered as receivers; otherwise every non-transmitting node is.
    ``tx_powers`` optionally assigns per-transmitter powers (Theorem 6.1
    experiments); the default is the uniform model power.  ``gains``
    optionally supplies the :func:`gain_matrix` cache (bit-identical
    results, see :func:`sinr_matrix`).

    Distances feeding the SINR are clamped from below to ``_MIN_DISTANCE``
    (see :func:`received_power`), so coincident points decode as
    astronomically strong links rather than NaNs.

    Because β > 1 guarantees uniqueness, ties are impossible and the
    result is well-defined.  To resolve one slot of many independent
    trials at once, use :func:`successful_receptions_batch`.
    """
    tx = np.asarray(transmitters, dtype=np.intp)
    n = distances.shape[0]
    if tx.size == 0:
        return {}
    if listeners is None:
        listener_mask = np.ones(n, dtype=bool)
    else:
        listener_mask = np.zeros(n, dtype=bool)
        listener_mask[np.asarray(listeners, dtype=np.intp)] = True
    listener_mask[tx] = False  # half-duplex

    sinr = sinr_matrix(params, distances, tx, tx_powers=tx_powers, gains=gains)
    ok = sinr >= params.beta  # (k, n)
    ok[:, ~listener_mask] = False

    result: dict[int, int] = {}
    k_idx, u_idx = np.nonzero(ok)
    for k, u in zip(k_idx.tolist(), u_idx.tolist()):
        # beta > 1 makes duplicates impossible, but assert defensively.
        assert u not in result, "beta > 1 violated: two decodable senders"
        result[u] = int(tx[k])
    return result


def successful_receptions_batch(
    params: SINRParameters,
    distances: np.ndarray,
    transmitters,
    listeners=None,
    gains: np.ndarray | None = None,
) -> list[dict[int, int]]:
    """Resolve one slot of ``trials`` independent runs in one reduction.

    ``distances`` is the ``(trials, n, n)`` tensor of per-trial pairwise
    distance matrices (see :func:`stack_distances`); ``transmitters`` is
    a sequence of ``trials`` index arrays, one per trial (they may have
    different lengths, including zero).  ``listeners`` is optionally a
    per-trial sequence of receiver index arrays (default: every
    non-transmitting node listens).  ``gains`` optionally supplies the
    precomputed ``(trials, n, n)`` gain tensor of :func:`gain_matrix`.

    Returns one ``listener -> transmitter`` dict per trial, in order.
    The result is bit-identical to calling :func:`successful_receptions`
    per trial: transmitter rows are laid out *ragged* (trial b owns a
    contiguous ``(k_b, n)`` block — no padding, so skewed per-trial
    transmitter counts cost nothing), each block's interference total
    reduces with exactly the sequential kernel's addend order, and every
    other step is elementwise over the flat ``(Σ k_b, n)`` layout.
    Uniform power only — the per-sender ``tx_powers`` hook of the
    sequential kernel is a single-trial feature (Theorem 6.1
    experiments).
    """
    dist = np.asarray(distances, dtype=np.float64)
    if dist.ndim != 3 or dist.shape[1] != dist.shape[2]:
        raise ValueError(
            f"distances must have shape (trials, n, n); got {dist.shape!r}"
        )
    trials, n, _ = dist.shape
    tx_lists = [np.asarray(t, dtype=np.intp) for t in transmitters]
    if len(tx_lists) != trials:
        raise ValueError(
            f"need one transmitter set per trial: {len(tx_lists)} != {trials}"
        )
    results: list[dict[int, int]] = [{} for _ in range(trials)]
    sizes = [t.size for t in tx_lists]
    if sum(sizes) == 0:
        return results
    if gains is None:
        gains = gain_matrix(params, dist)

    # Flat ragged layout: row r holds one (trial, transmitter) pair.
    tx_flat = np.concatenate(tx_lists)
    trial_of_row = np.repeat(np.arange(trials), sizes)
    offsets = np.concatenate([[0], np.cumsum(sizes)])

    # (r, u): power of row r's transmitter received at node u — one
    # gather for the whole batch.
    powers = gains[trial_of_row, tx_flat, :]
    # Total received power per (trial, node).  Each trial's block is a
    # contiguous (k_b, n) slice reduced exactly like the sequential
    # kernel (bit-identical interference sums).
    total = np.zeros((trials, n))
    for b in range(trials):
        if sizes[b]:
            total[b] = powers[offsets[b] : offsets[b + 1]].sum(axis=0)
    sinr = powers / ((total[trial_of_row] - powers) + params.noise)
    ok = sinr >= params.beta

    if listeners is None:
        listener_mask = np.ones((trials, n), dtype=bool)
    else:
        if len(listeners) != trials:
            raise ValueError("need one listener set per trial")
        listener_mask = np.zeros((trials, n), dtype=bool)
        for b, ls in enumerate(listeners):
            listener_mask[b, np.asarray(ls, dtype=np.intp)] = True
    listener_mask[trial_of_row, tx_flat] = False  # half-duplex
    ok &= listener_mask[trial_of_row]

    row_idx, u_idx = np.nonzero(ok)
    senders = tx_flat[row_idx]
    trials_hit = trial_of_row[row_idx]
    for b, u, sender in zip(
        trials_hit.tolist(), u_idx.tolist(), senders.tolist()
    ):
        assert u not in results[b], "beta > 1 violated: two decodable senders"
        results[b][u] = int(sender)
    return results
