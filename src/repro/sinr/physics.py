"""Vectorized SINR computations (paper Eq. 1).

A transmission from ``v`` is decoded at ``u`` iff

    SINR_u(v) = (P / d(v,u)^α) / (Σ_{w ∈ S\\{u,v}} P / d(w,u)^α + N) >= β,

where ``S`` is the set of concurrently transmitting nodes.  Because β > 1,
at most one transmitter can be decoded by any listener in any slot, so the
reception outcome of a slot is a partial function listener → transmitter.

All functions take a precomputed pairwise-distance matrix so the per-slot
cost is one masked matrix reduction (numpy), keeping thousand-node
simulations fast.
"""

from __future__ import annotations

import numpy as np

from repro.sinr.params import SINRParameters

__all__ = [
    "received_power",
    "interference_at",
    "sinr_matrix",
    "sinr_of_link",
    "successful_receptions",
]

# Distances below this are clamped to avoid division blow-ups; the paper
# normalizes minimum node distance to 1, so this never binds on valid
# layouts and only guards against degenerate test inputs.
_MIN_DISTANCE = 1.0e-9


def received_power(
    params: SINRParameters,
    dist: np.ndarray,
    power: float | np.ndarray | None = None,
) -> np.ndarray:
    """P / d^α for an array of distances (elementwise).

    ``power`` overrides the uniform model power; it may be an array
    broadcastable against ``dist`` (per-sender powers).  The paper's
    algorithms all use uniform power (§4.2), but the Theorem 6.1 lower
    bound holds *even under arbitrary power assignment*, which the
    corresponding experiment exercises through this hook.
    """
    d = np.maximum(np.asarray(dist, dtype=np.float64), _MIN_DISTANCE)
    p = params.power if power is None else power
    return p / d**params.alpha


def interference_at(
    params: SINRParameters,
    distances: np.ndarray,
    transmitters: np.ndarray,
    listener: int,
    exclude: int | None = None,
) -> float:
    """Total interference power at ``listener`` from ``transmitters``.

    ``transmitters`` is an index array; ``exclude`` (the intended sender)
    is removed from the sum.  The listener itself never contributes
    (a node cannot interfere with its own reception because it cannot
    transmit and listen in the same slot).
    """
    tx = np.asarray(transmitters, dtype=np.intp)
    mask = tx != listener
    if exclude is not None:
        mask &= tx != exclude
    others = tx[mask]
    if others.size == 0:
        return 0.0
    powers = received_power(params, distances[others, listener])
    return float(powers.sum())


def sinr_of_link(
    params: SINRParameters,
    distances: np.ndarray,
    transmitters: np.ndarray,
    sender: int,
    listener: int,
) -> float:
    """SINR of the (sender → listener) link under the given transmitter set."""
    if sender == listener:
        raise ValueError("sender and listener must differ")
    signal = float(received_power(params, distances[sender, listener]))
    interference = interference_at(
        params, distances, transmitters, listener, exclude=sender
    )
    return signal / (interference + params.noise)


def sinr_matrix(
    params: SINRParameters,
    distances: np.ndarray,
    transmitters: np.ndarray,
    tx_powers: np.ndarray | None = None,
) -> np.ndarray:
    """SINR of every (transmitter, node) pair in one shot.

    Returns an array of shape ``(len(transmitters), n)`` where entry
    ``(k, u)`` is the SINR of transmitter ``transmitters[k]`` at node
    ``u``, with the convention that a node's SINR at itself is 0 (it
    cannot hear while sending).  ``tx_powers`` optionally assigns a
    transmission power to each transmitter (aligned with
    ``transmitters``); omitted means the uniform model power.
    """
    tx = np.asarray(transmitters, dtype=np.intp)
    n = distances.shape[0]
    if tx.size == 0:
        return np.zeros((0, n))
    if tx_powers is not None:
        tx_powers = np.asarray(tx_powers, dtype=np.float64)
        if tx_powers.shape != tx.shape:
            raise ValueError("tx_powers must align with transmitters")
        if (tx_powers <= 0).any():
            raise ValueError("powers must be positive")
        per_sender = tx_powers[:, None]
    else:
        per_sender = None
    # (k, u): power of transmitter k received at u.
    powers = received_power(params, distances[tx, :], power=per_sender)
    total = powers.sum(axis=0)  # (n,) total received power at each node
    # Interference for transmitter k at u excludes k's own contribution.
    interference = total[None, :] - powers
    sinr = powers / (interference + params.noise)
    # Half-duplex: a transmitter cannot decode anything, so every column
    # belonging to a transmitting node is set to 0 (it would otherwise
    # hold a meaningless self-interference artifact).
    sinr[:, tx] = 0.0
    return sinr


def successful_receptions(
    params: SINRParameters,
    distances: np.ndarray,
    transmitters: np.ndarray,
    listeners: np.ndarray | None = None,
    tx_powers: np.ndarray | None = None,
) -> dict[int, int]:
    """Resolve one slot: which listener decodes which transmitter.

    Returns a dict ``listener -> transmitter`` containing exactly the
    pairs whose SINR meets β.  Nodes in ``transmitters`` never appear as
    keys (half-duplex).  If ``listeners`` is given, only those nodes are
    considered as receivers; otherwise every non-transmitting node is.
    ``tx_powers`` optionally assigns per-transmitter powers (Theorem 6.1
    experiments); the default is the uniform model power.

    Because β > 1 guarantees uniqueness, ties are impossible and the
    result is well-defined.
    """
    tx = np.asarray(transmitters, dtype=np.intp)
    n = distances.shape[0]
    if tx.size == 0:
        return {}
    if listeners is None:
        listener_mask = np.ones(n, dtype=bool)
    else:
        listener_mask = np.zeros(n, dtype=bool)
        listener_mask[np.asarray(listeners, dtype=np.intp)] = True
    listener_mask[tx] = False  # half-duplex

    sinr = sinr_matrix(params, distances, tx, tx_powers=tx_powers)
    ok = sinr >= params.beta  # (k, n)
    ok[:, ~listener_mask] = False

    result: dict[int, int] = {}
    k_idx, u_idx = np.nonzero(ok)
    for k, u in zip(k_idx.tolist(), u_idx.tolist()):
        # beta > 1 makes duplicates impossible, but assert defensively.
        assert u not in result, "beta > 1 violated: two decodable senders"
        result[u] = int(tx[k])
    return result
