"""Vectorized SINR computations (paper Eq. 1).

A transmission from ``v`` is decoded at ``u`` iff

    SINR_u(v) = (P / d(v,u)^α) / (Σ_{w ∈ S\\{u,v}} P / d(w,u)^α + N) >= β,

where ``S`` is the set of concurrently transmitting nodes.  Because β > 1,
at most one transmitter can be decoded by any listener in any slot, so the
reception outcome of a slot is a partial function listener → transmitter.

All functions take a precomputed pairwise-distance matrix so the per-slot
cost is one masked matrix reduction (numpy), keeping thousand-node
simulations fast.  Two further fast paths serve the batched experiment
engine (:mod:`repro.experiments`):

* the received-power (gain) matrix ``P / d^α`` can be computed once per
  deployment with :func:`gain_matrix` and passed back in through the
  ``gains`` parameter, removing the per-slot ``d**α`` power evaluation;
* :func:`successful_receptions_batch` resolves one slot of *many
  independent trials at once*, taking the per-trial ``(n, n)`` distance
  matrices stacked into a ``(trials, n, n)`` tensor and reducing the
  whole batch with a handful of numpy operations.

The batched kernel is engineered to be *bit-identical* to the sequential
one: per-trial interference totals are reduced over exactly the same
addends in the same order as :func:`sinr_matrix`, so a batched experiment
reproduces a sequential run decode-for-decode.
"""

from __future__ import annotations

import os

import numpy as np

from repro.sinr.params import ChannelModel, SINRParameters

__all__ = [
    "received_power",
    "gain_matrix",
    "batch_tensor",
    "batch_tensor_bytes",
    "check_batch_tensor_budget",
    "stack_distances",
    "interference_at",
    "sinr_matrix",
    "sinr_of_link",
    "successful_receptions",
    "successful_receptions_batch",
    "rayleigh_gains",
    "draw_power_multipliers",
    "draw_shadowing",
    "effective_gain_matrix",
]

# Distances below this are clamped to avoid division blow-ups; the paper
# normalizes minimum node distance to 1, so this never binds on valid
# layouts and only guards against degenerate test inputs.
_MIN_DISTANCE = 1.0e-9


def received_power(
    params: SINRParameters,
    dist: np.ndarray,
    power: float | np.ndarray | None = None,
) -> np.ndarray:
    """P / d^α for an array of distances (elementwise).

    Distances are first clamped from below to ``_MIN_DISTANCE`` (1e-9):
    the paper normalizes the minimum node distance to 1 (§4.2), so the
    clamp never binds on valid layouts and exists only so degenerate
    inputs (coincident points, zero diagonals) yield astronomically
    large-but-finite powers instead of NaN/inf.

    ``power`` overrides the uniform model power; it may be an array
    broadcastable against ``dist`` (per-sender powers).  The paper's
    algorithms all use uniform power (§4.2), but the Theorem 6.1 lower
    bound holds *even under arbitrary power assignment*, which the
    corresponding experiment exercises through this hook.

    ``dist`` may have any shape, including the batched ``(trials, n, n)``
    distance tensor of the experiment engine — the computation is purely
    elementwise.
    """
    d = np.maximum(np.asarray(dist, dtype=np.float64), _MIN_DISTANCE)
    p = params.power if power is None else power
    return p / d**params.alpha


def gain_matrix(params: SINRParameters, distances: np.ndarray) -> np.ndarray:
    """The full uniform-power link-gain matrix ``G[v, u] = P / d(v,u)^α``.

    This is the deployment-derived artifact the experiment engine
    memoizes: computing it once removes the per-slot ``d**α`` power
    evaluation from every subsequent slot resolution (pass the result to
    :func:`sinr_matrix` / :func:`successful_receptions` /
    :func:`successful_receptions_batch` via their ``gains`` parameter).

    Diagonal entries correspond to the clamped self-distance (see
    :func:`received_power` for the ``_MIN_DISTANCE`` clamp) and are huge;
    they are never read by the reception kernels, which exclude
    transmitters from listening (half-duplex).  ``distances`` may also be
    a ``(trials, n, n)`` stack, giving a ``(trials, n, n)`` gain tensor.
    """
    return received_power(params, distances)


# -- stochastic channel draws (ChannelModel) --------------------------------
#
# The three transforms below turn raw RNG output into the multipliers of
# :class:`~repro.sinr.params.ChannelModel`.  They are deliberately pure
# elementwise numpy so that the object runtime, the object lockstep
# executor and the columnar VectorRuntime — which all feed them the same
# per-trial streams in the same order — produce bit-identical powers.


def rayleigh_gains(uniforms: np.ndarray) -> np.ndarray:
    """Rayleigh fast-fading power multipliers from uniform draws.

    A Rayleigh-faded amplitude has |h|² ~ Exp(1) (unit mean, so fading
    neither amplifies nor attenuates on average); the inverse-CDF map
    ``-log(1 - u)`` sends u ∈ [0, 1) to (0, ∞) without ever producing
    inf/NaN (``log1p`` keeps u → 1⁻ finite at float64 resolution).
    """
    return -np.log1p(-np.asarray(uniforms, dtype=np.float64))


def draw_power_multipliers(
    model: ChannelModel, rng: np.random.Generator, n: int
) -> np.ndarray | None:
    """Per-node transmit-power multipliers, uniform in [1, spread].

    Returns None when the model keeps uniform power, so callers can
    skip the row scaling (and the draw) entirely.
    """
    if model.power_spread <= 1.0:
        return None
    return 1.0 + rng.random(n) * (model.power_spread - 1.0)


def draw_shadowing(
    model: ChannelModel, rng: np.random.Generator, n: int
) -> np.ndarray | None:
    """Symmetric per-link log-normal shadowing multipliers, or None.

    Draws an ``(n, n)`` standard-normal field, keeps the strict upper
    triangle and mirrors it (shadowing is reciprocal: the obstacle
    field between two positions attenuates both directions equally),
    then maps dB to linear: ``10^(σ·Z/10)``.  The diagonal multiplier
    is exactly 1; it is never read (half-duplex) but stays finite.
    """
    if model.shadowing_sigma_db <= 0.0:
        return None
    z = rng.standard_normal((n, n))
    sym = np.triu(z, 1)
    sym = sym + sym.T
    return 10.0 ** (model.shadowing_sigma_db * sym / 10.0)


def effective_gain_matrix(
    gains: np.ndarray,
    power_multipliers: np.ndarray | None,
    shadowing: np.ndarray | None,
) -> np.ndarray | None:
    """Fold the static (per-trial) multipliers into the base gain matrix.

    Row ``v`` of the result is ``gains[v, :] · m_v · S[v, :]`` — the
    received power of sender ``v`` at every listener before fast
    fading.  Returns None when both multipliers are absent (the slot
    kernels then use the shared deterministic cache untouched).
    """
    if power_multipliers is None and shadowing is None:
        return None
    eff = np.array(gains, dtype=np.float64)  # copy: cache arrays are frozen
    if power_multipliers is not None:
        eff *= power_multipliers[:, None]
    if shadowing is not None:
        eff *= shadowing
    return eff


# Ceiling on the bytes a batched (trials, n, n) tensor may allocate
# before :func:`stack_distances` refuses.  Overridable per call or via
# the REPRO_BATCH_TENSOR_BUDGET environment variable (read at each
# check, so tests and long-lived sessions can adjust it); the default
# (1 GiB) admits ~16 trials of 2896-node deployments while catching the
# accidental thousand-trial stack that would silently swap the host.
DEFAULT_BATCH_TENSOR_BUDGET = 1 << 30


def _batch_tensor_budget() -> int:
    raw = os.environ.get("REPRO_BATCH_TENSOR_BUDGET")
    if raw is None:
        return DEFAULT_BATCH_TENSOR_BUDGET
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_BATCH_TENSOR_BUDGET must be an integer byte count; "
            f"got {raw!r}"
        ) from None


def batch_tensor_bytes(trials: int, n: int, itemsize: int = 8) -> int:
    """Bytes a dense ``(trials, n, n)`` tensor of ``itemsize`` would take."""
    return int(trials) * int(n) * int(n) * int(itemsize)


def check_batch_tensor_budget(
    trials: int, n: int, max_bytes: int | None = None, itemsize: int = 8
) -> None:
    """Raise before a ``(trials, n, n)`` tensor blows the byte budget.

    The error names the offending shape and suggests the largest trial
    chunk that fits, so callers can split their sweep (e.g. via the
    engine's ``workers`` chunking) instead of silently allocating
    gigabytes.  ``max_bytes=None`` reads the module default, which the
    ``REPRO_BATCH_TENSOR_BUDGET`` environment variable overrides.
    """
    budget = _batch_tensor_budget() if max_bytes is None else max_bytes
    if budget <= 0:  # explicit opt-out
        return
    need = batch_tensor_bytes(trials, n, itemsize)
    if need <= budget:
        return
    per_trial = batch_tensor_bytes(1, n, itemsize)
    chunk = max(1, budget // per_trial) if per_trial <= budget else 0
    hint = (
        f"split the batch into chunks of <= {chunk} trial(s)"
        if chunk
        else f"a single {n}-node trial already needs {per_trial} bytes"
    )
    raise MemoryError(
        f"batched ({trials}, {n}, {n}) tensor needs {need} bytes, over "
        f"the {budget}-byte budget; {hint}, or raise the budget via "
        "REPRO_BATCH_TENSOR_BUDGET / the max_bytes parameter"
    )


def batch_tensor(matrices, itemsize: int = 16) -> np.ndarray:
    """``(trials, n, n)`` view-or-stack for the batched executors.

    When every entry is literally the same matrix object — the common
    sweep, many seeds over one cached deployment — a zero-stride
    broadcast view costs nothing.  Genuinely distinct matrices
    materialize through :func:`check_batch_tensor_budget`; the default
    ``itemsize=16`` accounts for the two float64 stacks a batch
    materializes together (distances AND gains), so the budget bounds
    the batch's peak rather than one allocation.
    """
    first = matrices[0]
    shape = (len(matrices), *first.shape)
    if all(m is first for m in matrices):
        return np.broadcast_to(first, shape)
    check_batch_tensor_budget(len(matrices), first.shape[0], itemsize=itemsize)
    return np.stack(matrices)


def stack_distances(matrices, max_bytes: int | None = None) -> np.ndarray:
    """Stack per-trial ``(n, n)`` distance matrices into ``(trials, n, n)``.

    All matrices must share one shape; trials over differently-sized
    deployments cannot be batched together (the engine groups plans by
    node count before calling this).  The allocation is guarded by
    :func:`check_batch_tensor_budget`: a stack that would exceed the
    byte budget raises ``MemoryError`` with a suggested chunk size
    instead of silently allocating gigabytes.
    """
    mats = [np.asarray(m, dtype=np.float64) for m in matrices]
    if not mats:
        raise ValueError("need at least one distance matrix")
    shape = mats[0].shape
    if len(shape) != 2 or shape[0] != shape[1]:
        raise ValueError(f"distance matrices must be square; got {shape!r}")
    for m in mats[1:]:
        if m.shape != shape:
            raise ValueError(
                f"cannot stack distance matrices of shapes {shape!r} "
                f"and {m.shape!r}; batch trials share one node count"
            )
    check_batch_tensor_budget(len(mats), shape[0], max_bytes=max_bytes)
    return np.stack(mats)


def interference_at(
    params: SINRParameters,
    distances: np.ndarray,
    transmitters: np.ndarray,
    listener: int,
    exclude: int | None = None,
) -> float:
    """Total interference power at ``listener`` from ``transmitters``.

    ``transmitters`` is an index array; ``exclude`` (the intended sender)
    is removed from the sum.  The listener itself never contributes
    (a node cannot interfere with its own reception because it cannot
    transmit and listen in the same slot).
    """
    tx = np.asarray(transmitters, dtype=np.intp)
    mask = tx != listener
    if exclude is not None:
        mask &= tx != exclude
    others = tx[mask]
    if others.size == 0:
        return 0.0
    powers = received_power(params, distances[others, listener])
    return float(powers.sum())


def sinr_of_link(
    params: SINRParameters,
    distances: np.ndarray,
    transmitters: np.ndarray,
    sender: int,
    listener: int,
) -> float:
    """SINR of the (sender → listener) link under the given transmitter set."""
    if sender == listener:
        raise ValueError("sender and listener must differ")
    signal = float(received_power(params, distances[sender, listener]))
    interference = interference_at(
        params, distances, transmitters, listener, exclude=sender
    )
    return signal / (interference + params.noise)


def sinr_matrix(
    params: SINRParameters,
    distances: np.ndarray,
    transmitters: np.ndarray,
    tx_powers: np.ndarray | None = None,
    gains: np.ndarray | None = None,
    link_powers: np.ndarray | None = None,
) -> np.ndarray:
    """SINR of every (transmitter, node) pair in one shot.

    Returns an array of shape ``(len(transmitters), n)`` where entry
    ``(k, u)`` is the SINR of transmitter ``transmitters[k]`` at node
    ``u``, with the convention that a node's SINR at itself is 0 (it
    cannot hear while sending).  ``tx_powers`` optionally assigns a
    transmission power to each transmitter (aligned with
    ``transmitters``); omitted means the uniform model power.

    ``gains`` optionally supplies the precomputed uniform-power gain
    matrix of :func:`gain_matrix`; passing it skips the per-call power
    evaluation without changing a single output bit (the gathered rows
    hold exactly the values the direct computation would produce).  It is
    ignored when ``tx_powers`` is given, since per-sender powers cannot
    reuse the uniform-power cache.

    ``link_powers`` overrides the received-power evaluation entirely: a
    ``(len(transmitters), n)`` array whose row ``k`` is the power of
    transmitter ``transmitters[k]`` received at every node — the
    stochastic-channel hook (:class:`~repro.sinr.params.ChannelModel`),
    where fading/shadowing/heterogeneous-power multipliers are already
    folded in by the caller (``Channel.slot_link_powers``).  Mutually
    exclusive with ``tx_powers``.
    """
    tx = np.asarray(transmitters, dtype=np.intp)
    n = distances.shape[0]
    if tx.size == 0:
        return np.zeros((0, n))
    if link_powers is not None and tx_powers is not None:
        raise ValueError("link_powers and tx_powers are mutually exclusive")
    if tx_powers is not None:
        tx_powers = np.asarray(tx_powers, dtype=np.float64)
        if tx_powers.shape != tx.shape:
            raise ValueError("tx_powers must align with transmitters")
        if (tx_powers <= 0).any():
            raise ValueError("powers must be positive")
        per_sender = tx_powers[:, None]
    else:
        per_sender = None
    # (k, u): power of transmitter k received at u.
    if link_powers is not None:
        powers = np.asarray(link_powers, dtype=np.float64)
        if powers.shape != (tx.size, n):
            raise ValueError(
                f"link_powers must have shape {(tx.size, n)}; "
                f"got {powers.shape!r}"
            )
    elif per_sender is None and gains is not None:
        powers = gains[tx, :]
    else:
        powers = received_power(params, distances[tx, :], power=per_sender)
    total = powers.sum(axis=0)  # (n,) total received power at each node
    # Interference for transmitter k at u excludes k's own contribution.
    interference = total[None, :] - powers
    sinr = powers / (interference + params.noise)
    # Half-duplex: a transmitter cannot decode anything, so every column
    # belonging to a transmitting node is set to 0 (it would otherwise
    # hold a meaningless self-interference artifact).
    sinr[:, tx] = 0.0
    return sinr


def successful_receptions(
    params: SINRParameters,
    distances: np.ndarray,
    transmitters: np.ndarray,
    listeners: np.ndarray | None = None,
    tx_powers: np.ndarray | None = None,
    gains: np.ndarray | None = None,
    link_powers: np.ndarray | None = None,
) -> dict[int, int]:
    """Resolve one slot: which listener decodes which transmitter.

    Returns a dict ``listener -> transmitter`` containing exactly the
    pairs whose SINR meets β.  Nodes in ``transmitters`` never appear as
    keys (half-duplex).  If ``listeners`` is given, only those nodes are
    considered as receivers; otherwise every non-transmitting node is.
    ``tx_powers`` optionally assigns per-transmitter powers (Theorem 6.1
    experiments); the default is the uniform model power.  ``gains``
    optionally supplies the :func:`gain_matrix` cache (bit-identical
    results, see :func:`sinr_matrix`).  ``link_powers`` optionally
    supplies the full ``(k, n)`` received-power matrix — the stochastic
    channel hook, see :func:`sinr_matrix`.

    Distances feeding the SINR are clamped from below to ``_MIN_DISTANCE``
    (see :func:`received_power`), so coincident points decode as
    astronomically strong links rather than NaNs.

    Because β > 1 guarantees uniqueness, ties are impossible and the
    result is well-defined (this holds for *any* positive received
    powers, so the stochastic multipliers never break it: two decodes
    at one listener would each need more than half the total power).
    To resolve one slot of many independent trials at once, use
    :func:`successful_receptions_batch`.
    """
    tx = np.asarray(transmitters, dtype=np.intp)
    n = distances.shape[0]
    if tx.size == 0:
        return {}
    if listeners is None:
        listener_mask = np.ones(n, dtype=bool)
    else:
        listener_mask = np.zeros(n, dtype=bool)
        listener_mask[np.asarray(listeners, dtype=np.intp)] = True
    listener_mask[tx] = False  # half-duplex

    sinr = sinr_matrix(
        params,
        distances,
        tx,
        tx_powers=tx_powers,
        gains=gains,
        link_powers=link_powers,
    )
    ok = sinr >= params.beta  # (k, n)
    ok[:, ~listener_mask] = False

    k_idx, u_idx = np.nonzero(ok)
    _check_unique_listeners(u_idx)
    return dict(zip(u_idx.tolist(), tx[k_idx].tolist()))


def _check_unique_listeners(listener_idx: np.ndarray) -> None:
    """Defend the β > 1 uniqueness invariant in one vectorized check.

    The historical per-pair ``assert u not in result`` cost O(k·n) dict
    probes on every slot and vanished under ``python -O``; this single
    ``np.unique`` comparison costs one sort of the (sparse) decode list
    and runs identically with or without ``-O``.
    """
    if listener_idx.size != np.unique(listener_idx).size:
        raise RuntimeError(
            "beta > 1 violated: two decodable senders at one listener"
        )


def _segment_totals(
    powers: np.ndarray, sizes: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """Per-trial interference totals over the ragged ``(Σ k_b, n)`` layout.

    Each trial's contiguous ``(k_b, n)`` block reduces with
    ``ndarray.sum(axis=0)`` — sequential row accumulation, the exact
    addend order of the sequential kernel's ``sinr_matrix`` — so batched
    results stay bit-identical to per-trial resolution.

    Deliberately NOT ``np.add.reduceat``: measured on numpy 2.4,
    reduceat re-associates additions at SIMD width (ULP-divergent from
    ``sum(axis=0)`` for >= 7 rows, breaking the bit-identity contract)
    *and* is ~2.5x slower than this per-block loop at the engine's
    shapes (the loop body is one fused C reduction per trial; the loop
    overhead is trials × ~1µs, negligible against the (Σ k_b, n)
    elementwise work around it).
    """
    trials = sizes.size
    n = powers.shape[1]
    total = np.zeros((trials, n))
    for b in np.flatnonzero(sizes).tolist():
        total[b] = powers[offsets[b] : offsets[b + 1]].sum(axis=0)
    return total


def successful_receptions_batch(
    params: SINRParameters,
    distances: np.ndarray,
    transmitters,
    listeners=None,
    gains: np.ndarray | None = None,
    flat: bool = False,
    link_powers: np.ndarray | None = None,
):
    """Resolve one slot of ``trials`` independent runs in one reduction.

    ``distances`` is the ``(trials, n, n)`` tensor of per-trial pairwise
    distance matrices (see :func:`stack_distances`); ``transmitters`` is
    a sequence of ``trials`` index arrays, one per trial (they may have
    different lengths, including zero).  ``listeners`` is optionally a
    per-trial sequence of receiver index arrays (default: every
    non-transmitting node listens).  ``gains`` optionally supplies the
    precomputed ``(trials, n, n)`` gain tensor of :func:`gain_matrix`.

    Returns one ``listener -> transmitter`` dict per trial, in order —
    or, with ``flat=True``, the dict-building tail is skipped and the
    decodes come back as three aligned index arrays
    ``(trial_idx, listener_idx, sender_idx)`` in (trial, transmitter,
    listener) order, which the columnar :class:`~repro.vectorized`
    runtime consumes directly without per-decode Python dict traffic.

    The result is bit-identical to calling :func:`successful_receptions`
    per trial: transmitter rows are laid out *ragged* (trial b owns a
    contiguous ``(k_b, n)`` block — no padding, so skewed per-trial
    transmitter counts cost nothing), each block's interference total
    reduces with exactly the sequential kernel's addend order (see
    :func:`_segment_totals`), and every other step is elementwise over
    the flat ``(Σ k_b, n)`` layout.  Uniform power only — the per-sender
    ``tx_powers`` hook of the sequential kernel is a single-trial
    feature (Theorem 6.1 experiments).

    ``link_powers`` optionally replaces the gain gather with explicit
    received powers: a flat ``(Σ k_b, n)`` array whose row ``r`` is the
    power of row ``r``'s (trial, transmitter) pair at every node, laid
    out in the same ragged trial-block order as ``transmitters``.  This
    is the batched stochastic-channel hook
    (:class:`~repro.sinr.params.ChannelModel`): each trial's channel
    folds its own fading/shadowing/power multipliers into its block
    (``Channel.slot_link_powers``), so the batch stays bit-identical to
    per-trial resolution.
    """
    dist = np.asarray(distances, dtype=np.float64)
    if dist.ndim != 3 or dist.shape[1] != dist.shape[2]:
        raise ValueError(
            f"distances must have shape (trials, n, n); got {dist.shape!r}"
        )
    trials, n, _ = dist.shape
    tx_lists = [np.asarray(t, dtype=np.intp) for t in transmitters]
    if len(tx_lists) != trials:
        raise ValueError(
            f"need one transmitter set per trial: {len(tx_lists)} != {trials}"
        )
    sizes = np.array([t.size for t in tx_lists], dtype=np.intp)
    if int(sizes.sum()) == 0:
        empty = np.empty(0, dtype=np.intp)
        if flat:
            return empty, empty.copy(), empty.copy()
        return [{} for _ in range(trials)]
    if gains is None and link_powers is None:
        gains = gain_matrix(params, dist)

    # Flat ragged layout: row r holds one (trial, transmitter) pair.
    tx_flat = np.concatenate(tx_lists)
    trial_of_row = np.repeat(np.arange(trials), sizes)
    offsets = np.concatenate([[0], np.cumsum(sizes)])

    # (r, u): power of row r's transmitter received at node u — one
    # gather for the whole batch.  A zero-stride gain stack (every
    # trial sharing one deployment, the common sweep) gathers through
    # its base matrix: same values, one less index dimension.
    if link_powers is not None:
        powers = np.asarray(link_powers, dtype=np.float64)
        if powers.shape != (tx_flat.size, n):
            raise ValueError(
                f"link_powers must have shape {(tx_flat.size, n)}; "
                f"got {powers.shape!r}"
            )
    else:
        gains = np.asarray(gains)
        if gains.ndim == 3 and gains.strides[0] == 0:
            powers = gains[0][tx_flat, :]
        else:
            powers = gains[trial_of_row, tx_flat, :]
    # Total received power per (trial, node), bit-identical to the
    # sequential kernel's per-trial reduction.  The SINR evaluation
    # reuses the interference buffer in place — identical operations
    # and operand order as `powers / ((total[tor] - powers) + noise)`,
    # without three (Σ k_b, n) temporaries per slot.
    total = _segment_totals(powers, sizes, offsets)
    # Expanding total back to rows via repeat (contiguous block copies)
    # beats a fancy-index gather; the values are identical.
    interference = np.repeat(total, sizes, axis=0)
    np.subtract(interference, powers, out=interference)
    interference += params.noise
    sinr = np.divide(powers, interference, out=interference)
    ok = sinr >= params.beta

    if listeners is None:
        listener_mask = np.ones((trials, n), dtype=bool)
    else:
        if len(listeners) != trials:
            raise ValueError("need one listener set per trial")
        listener_mask = np.zeros((trials, n), dtype=bool)
        for b, ls in enumerate(listeners):
            listener_mask[b, np.asarray(ls, dtype=np.intp)] = True
    listener_mask[trial_of_row, tx_flat] = False  # half-duplex
    ok &= listener_mask[trial_of_row]

    row_idx, u_idx = np.nonzero(ok)
    senders = tx_flat[row_idx]
    trials_hit = trial_of_row[row_idx]
    # beta > 1 makes two decodes at one (trial, listener) impossible;
    # one vectorized uniqueness check replaces the old per-pair asserts.
    _check_unique_listeners(trials_hit * n + u_idx)
    if flat:
        return trials_hit, u_idx, senders

    results: list[dict[int, int]] = [{} for _ in range(trials)]
    for b, u, sender in zip(
        trials_hit.tolist(), u_idx.tolist(), senders.tolist()
    ):
        results[b][u] = int(sender)
    return results
