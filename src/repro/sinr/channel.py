"""The slot-resolution channel with optional failure injection.

:class:`Channel` owns the geometry + SINR parameters for a deployment and
resolves one slot at a time: given the set of transmitting nodes (and
their payloads), it returns which listeners decode which message.

Failure injection (:class:`JammingAdversary`) lets the tests exercise the
unreliability paths of the protocols: a jammer raises the effective noise
floor at chosen slots, or erases individual receptions.  This models the
"unreliable communication" regimes discussed in §4.4/Remark 7.2 without
changing the protocol code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.geometry.points import PointSet, pairwise_distances
from repro.sinr.params import SINRParameters
from repro.sinr.physics import (
    draw_power_multipliers,
    draw_shadowing,
    effective_gain_matrix,
    gain_matrix,
    rayleigh_gains,
    sinr_of_link,
    successful_receptions,
)
from repro.topology import TopologyProvider

__all__ = ["Channel", "JammingAdversary", "GrayZoneAdversary", "SlotOutcome"]


@dataclass(frozen=True)
class SlotOutcome:
    """The result of resolving one slot.

    Attributes
    ----------
    transmitters:
        Sorted tuple of node ids that transmitted this slot.
    receptions:
        Mapping listener id → (sender id, payload) for every successful
        decode.  Half-duplex: transmitters never appear as listeners.
    """

    transmitters: tuple[int, ...]
    receptions: dict[int, tuple[int, Any]]


class JammingAdversary:
    """Erasure/jamming failure injector for tests and robustness benches.

    Parameters
    ----------
    drop_probability:
        Each successful reception is independently erased with this
        probability (models fading bursts / adversarial erasures).
    jam_slots:
        Set of slot indices in which *all* receptions are erased.
    rng:
        Numpy generator for reproducibility.
    """

    def __init__(
        self,
        drop_probability: float = 0.0,
        jam_slots: set[int] | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        self.drop_probability = drop_probability
        self.jam_slots = jam_slots or set()
        self.rng = rng or np.random.default_rng(0)
        self.erased_count = 0

    def filter(
        self, slot: int, receptions: dict[int, tuple[int, Any]]
    ) -> dict[int, tuple[int, Any]]:
        """Apply the failure model to a slot's receptions."""
        if slot in self.jam_slots:
            self.erased_count += len(receptions)
            return {}
        if self.drop_probability == 0.0:
            return receptions
        kept: dict[int, tuple[int, Any]] = {}
        for listener, payload in receptions.items():
            if self.rng.random() < self.drop_probability:
                self.erased_count += 1
            else:
                kept[listener] = payload
        return kept


class GrayZoneAdversary:
    """Dual-graph unreliability in the style of Ghaffari et al. [23].

    Remark 7.2: the paper's setting makes all communication reliable,
    but notes the dual-graph extension where links *outside* a reliable
    core graph are controlled by a nondeterministic adversary.  This
    adversary realizes that model: receptions whose (transmitter,
    listener) pair is an edge of ``reliable_graph`` (typically G_{1-ε})
    always pass; every other decodable reception — the gray zone
    G_1 \\ G_{1-ε} — is erased with probability ``gray_drop``.

    With ``gray_drop = 1.0`` communication is *exactly* the reliable
    graph; intermediate values model flaky fringe links.  The paper's
    guarantees only ever rely on strong links, so every protocol here
    must keep its contract under any ``gray_drop`` — which the
    failure-injection tests verify.
    """

    def __init__(
        self,
        reliable_graph,
        gray_drop: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= gray_drop <= 1.0:
            raise ValueError("gray_drop must be in [0, 1]")
        self.reliable_graph = reliable_graph
        self.gray_drop = gray_drop
        self.rng = rng or np.random.default_rng(0)
        self.erased_count = 0

    def filter(
        self, slot: int, receptions: dict[int, tuple[int, Any]]
    ) -> dict[int, tuple[int, Any]]:
        """Erase gray-zone receptions per the drop probability."""
        kept: dict[int, tuple[int, Any]] = {}
        for listener, (sender, payload) in receptions.items():
            if self.reliable_graph.has_edge(sender, listener):
                kept[listener] = (sender, payload)
            elif self.gray_drop >= 1.0 or self.rng.random() < self.gray_drop:
                self.erased_count += 1
            else:
                kept[listener] = (sender, payload)
        return kept


class Channel:
    """SINR channel bound to a fixed deployment.

    Precomputes the pairwise-distance matrix and the uniform-power gain
    matrix ``P / d^α`` once; each slot resolution is then a single
    vectorized SINR reduction with no power evaluation on the hot path.
    The experiment engine passes both matrices in from its shared
    artifact cache so they are computed once per deployment rather than
    once per trial.

    When ``params.channel_model`` is active (fading / shadowing /
    heterogeneous power, see :class:`~repro.sinr.params.ChannelModel`),
    the channel additionally owns the trial's stochastic state: a
    dedicated channel RNG stream (:func:`spawn_channel_rng` of the
    trial's master seed — node streams are untouched), the per-trial
    effective gain matrix with the static multipliers folded in, and a
    per-link fading buffer.  Runtimes arm it via
    :meth:`bind_trial_seed`; slot resolution then flows through
    :meth:`slot_link_powers` on every executor, which is what keeps
    stochastic trials decode-for-decode identical across the object,
    lockstep-batched and columnar paths.
    """

    def __init__(
        self,
        points: PointSet,
        params: SINRParameters,
        adversary: JammingAdversary | None = None,
        distances: np.ndarray | None = None,
        gains: np.ndarray | None = None,
        topology: TopologyProvider | None = None,
    ) -> None:
        self.points = points
        self.params = params
        self.adversary = adversary
        self.sparse_spec = params.sparse
        # Under a sparse resolution spec the dense matrices become lazy:
        # the resolver carries its own grid artifacts, and forcing two
        # O(n²) arrays would defeat the point of going sparse.  They
        # still materialize on first access (reference comparisons,
        # link_sinr probes, the stochastic model's effective gains).
        if distances is not None:
            self._distances = np.asarray(distances, dtype=np.float64)
        elif self.sparse_spec is not None:
            self._distances = None
        else:
            self._distances = pairwise_distances(points.coords)
        if gains is not None:
            self._gains = np.asarray(gains, dtype=np.float64)
        elif self.sparse_spec is not None and self._distances is None:
            self._gains = None
        else:
            self._gains = gain_matrix(params, self._distances)
        self._resolver = (
            self._build_resolver(points)
            if self.sparse_spec is not None
            and len(points) >= self.sparse_spec.min_n
            else None
        )
        self._slot_count = 0
        self.total_transmissions = 0
        self.total_receptions = 0
        model = params.channel_model
        self.model = model if model is not None and model.is_active else None
        self.effective_gains: np.ndarray | None = None
        self._fading = None  # LinkUniformBuffer once armed (Rayleigh)
        self._multipliers = None  # static per-trial channel-model draws,
        self._shadowing = None  # kept for per-epoch gain re-folding
        # Dynamic topology (mobility/churn): a non-dynamic provider is
        # exactly topology=None — no state is ever bound, no slot pays
        # anything, and runs stay byte-identical to the static seed.
        self.topology = (
            topology if topology is not None and topology.is_dynamic else None
        )
        self._topo_state = None
        self._initial_points = self.points
        self._initial_distances = self._distances
        self._initial_gains = self._gains
        self._initial_resolver = self._resolver
        self.alive: np.ndarray | None = None

    def _build_resolver(self, points: PointSet):
        # Deferred import (cycle: experiments.cache -> plans -> this
        # module's sibling params via the experiments package).
        from repro.experiments.cache import sparse_resolver

        return sparse_resolver(points, self.params)

    @property
    def distances(self) -> np.ndarray:
        """Pairwise distances — lazily materialized under sparse mode."""
        if self._distances is None:
            self._distances = pairwise_distances(self.points.coords)
        return self._distances

    @distances.setter
    def distances(self, value: np.ndarray | None) -> None:
        self._distances = value

    @property
    def gains(self) -> np.ndarray:
        """Uniform-power link gains — lazily materialized under sparse."""
        if self._gains is None:
            self._gains = gain_matrix(self.params, self.distances)
        return self._gains

    @gains.setter
    def gains(self, value: np.ndarray | None) -> None:
        self._gains = value

    @property
    def sparse_active(self) -> bool:
        """Does a sparse resolver actually govern this deployment?

        False for deployments below the spec's ``min_n`` crossover even
        when a spec is present — those resolve through the dense
        kernels, and every consumer (lockstep batching, the columnar
        runtime's per-trial sparse loop) keys off *this* rather than
        the spec so the small-n fallback is a single decision.
        """
        return self._resolver is not None

    @property
    def stochastic(self) -> bool:
        """Does an active channel model govern this deployment?"""
        return self.model is not None

    @property
    def dynamic_topology(self) -> bool:
        """Does a dynamic topology provider govern this deployment?"""
        return self.topology is not None

    def bind_trial_seed(self, seed: int | None) -> None:
        """Arm the stochastic channel state with the trial's master seed.

        A no-op when the channel model is inactive (no RNG is spawned,
        no draw happens — the deterministic path stays byte-identical).
        Otherwise spawns the dedicated channel stream and performs the
        trial's *static* draws in a fixed order — per-node power
        multipliers first, then the shadowing field — folding them into
        ``effective_gains``; Rayleigh fading (per-slot draws) is served
        lazily from the remaining stream through a
        :class:`~repro.simulation.rng.LinkUniformBuffer`.  Rebinding
        (e.g. reusing one channel across runtimes) restarts the stream
        deterministically.

        Also (re)arms the dynamic topology state
        (:mod:`repro.topology`): geometry rewinds to the initial
        deployment and the provider binds fresh per-trial state.
        Mobility draws come from the provider's own seed — never from
        ``seed`` — so a provider perturbs geometry only (see the
        RNG-stream allocation notes in :mod:`repro.topology.providers`).
        """
        if self.topology is not None:
            self.points = self._initial_points
            self._distances = self._initial_distances
            self._gains = self._initial_gains
            self._resolver = self._initial_resolver
            self._topo_state = self.topology.bind(self._initial_points, seed)
            self.alive = self._topo_state.initial_alive()
        if self.model is None:
            return
        # Deferred import: repro.simulation.runtime imports this module,
        # so a top-level import of the (pure-numpy) rng module would
        # close an import cycle through repro.simulation.__init__.
        from repro.simulation.rng import LinkUniformBuffer, spawn_channel_rng

        rng = spawn_channel_rng(self.n, seed)
        self._multipliers = draw_power_multipliers(self.model, rng, self.n)
        self._shadowing = draw_shadowing(self.model, rng, self.n)
        self.effective_gains = effective_gain_matrix(
            self.gains, self._multipliers, self._shadowing
        )
        self._fading = LinkUniformBuffer(rng) if self.model.rayleigh else None

    def advance_topology(self, slot: int) -> bool:
        """Apply the topology changes scheduled at the top of ``slot``.

        The epoch contract: every executor calls this once per trial
        per slot, in increasing slot order, *before* collecting the
        slot's transmissions — so a node crashed at slot ``s`` is
        silent in ``s``, and positions moved at an epoch boundary shape
        that very slot's SINR.  Returns True when the *geometry*
        changed (gains were re-derived), which tells the batched
        executors to restack their ``(trials, n, n)`` tensors;
        membership-only changes return False (the ``alive`` mask is
        read fresh each slot by every consumer).

        Geometry refresh flows through the shared artifact cache
        (:meth:`repro.experiments.cache.ArtifactCache.geometry`), and
        the channel model's static per-trial multipliers are re-folded
        onto the new gains without consuming any channel-stream draws —
        shadowing stays attached to node *identities* across epochs,
        the quasi-static reading of PR 4's once-per-trial draw.
        """
        state = self._topo_state
        if state is None:
            return False
        update = state.advance(slot)
        if update is None:
            return False
        if update.alive is not None:
            # Normalize an all-alive mask back to None so the fast
            # no-churn paths (object reception dicts, columnar masking)
            # resume once the last outage has drained.
            self.alive = update.alive if not update.alive.all() else None
        if update.points is None:
            return False
        self.points = update.points
        if (
            self.sparse_spec is not None
            and len(update.points) >= self.sparse_spec.min_n
        ):
            # Epoch contract for the sparse layer: the grid is rebuilt
            # (through the cache, so a shared trajectory shares each
            # epoch's resolver) and the lazy dense matrices are dropped
            # — they re-derive from the new coordinates only if some
            # consumer actually touches them.
            self._resolver = self._build_resolver(update.points)
            self._distances = None
            self._gains = None
        else:
            # Deferred import (cycle: experiments.cache -> plans -> this
            # module's sibling params via the experiments package).
            from repro.experiments.cache import geometry_artifacts

            self.distances, self.gains = geometry_artifacts(
                update.points, self.params
            )
        if self.model is not None:
            self.effective_gains = effective_gain_matrix(
                self.gains, self._multipliers, self._shadowing
            )
        return True

    def slot_link_powers(self, tx_ids: np.ndarray) -> np.ndarray | None:
        """This slot's ``(k, n)`` received-power rows, or None.

        None means the deterministic fast path (shared gain cache)
        applies.  Otherwise returns the effective per-link powers of the
        given transmitters with this slot's fresh Rayleigh draws folded
        in — consuming exactly ``k·n`` channel-stream uniforms, so the
        stream position depends only on the trial's transmission
        history (which all executors reproduce identically).
        """
        if self.model is None:
            return None
        if self.effective_gains is None and self._fading is None:
            raise RuntimeError(
                "stochastic channel model is not armed; call "
                "bind_trial_seed(seed) before resolving slots"
            )
        base = self.effective_gains if self.effective_gains is not None else self.gains
        powers = base[tx_ids, :]
        if self._fading is not None:
            uniforms = self._fading.take(tx_ids.size * self.n)
            powers = powers * rayleigh_gains(
                uniforms.reshape(tx_ids.size, self.n)
            )
        return powers

    @property
    def n(self) -> int:
        """Number of nodes on the channel."""
        return len(self.points)

    @property
    def slots_resolved(self) -> int:
        """How many slots have been resolved so far."""
        return self._slot_count

    def validated_transmitters(self, transmissions: dict[int, Any]) -> np.ndarray:
        """Sorted transmitter-index array, validating node ids."""
        for node in transmissions:
            if not 0 <= node < self.n:
                raise ValueError(f"unknown node id {node}")
        return np.array(sorted(transmissions), dtype=np.intp)

    def resolve_slot(self, transmissions: dict[int, Any]) -> SlotOutcome:
        """Resolve one slot.

        ``transmissions`` maps node id → payload for every node that
        transmits this slot.  Returns the :class:`SlotOutcome` after any
        adversarial filtering.
        """
        tx_ids = self.validated_transmitters(transmissions)
        return self.finalize_slot(
            transmissions, tx_ids, self.resolve_raw(tx_ids)
        )

    def resolve_raw(self, tx_ids: np.ndarray) -> dict[int, int]:
        """The physics-layer ``listener -> sender`` map for one slot.

        Routes through the sparse resolver when
        ``params.sparse`` is set, the dense kernel otherwise; both
        produce dicts with identical insertion order (the dense
        ``np.nonzero`` row-major order), which downstream trace
        recording and adversary filtering rely on.  Consumes this
        slot's fading draws when the channel model is active.
        """
        link_powers = self.slot_link_powers(tx_ids)
        if self._resolver is not None:
            return self._resolver.resolve(tx_ids, link_powers=link_powers)
        return successful_receptions(
            self.params,
            self.distances,
            tx_ids,
            gains=self.gains,
            link_powers=link_powers,
        )

    def resolve_raw_flat(
        self, tx_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One slot's decodes as ``(listeners, senders)`` index arrays,
        in the dense kernels' (transmitter row, listener) order — the
        per-trial sparse entry point of the columnar runtime."""
        link_powers = self.slot_link_powers(tx_ids)
        if self._resolver is not None:
            return self._resolver.resolve_flat(
                tx_ids, link_powers=link_powers
            )
        raw = successful_receptions(
            self.params,
            self.distances,
            tx_ids,
            gains=self.gains,
            link_powers=link_powers,
        )
        listeners = np.fromiter(raw.keys(), dtype=np.intp, count=len(raw))
        senders = np.fromiter(raw.values(), dtype=np.intp, count=len(raw))
        return listeners, senders

    def finalize_slot(
        self,
        transmissions: dict[int, Any],
        tx_ids: np.ndarray,
        raw: dict[int, int],
    ) -> SlotOutcome:
        """Turn a raw ``listener -> sender`` map into this slot's outcome.

        ``raw`` is the physics-layer result for ``tx_ids`` (as produced
        by :func:`~repro.sinr.physics.successful_receptions` or one entry
        of the batched kernel).  Applies payload attachment, adversarial
        filtering, and the utilization counters — the per-trial half of
        :meth:`resolve_slot`, split out so the batched experiment engine
        can resolve many trials' physics in one reduction and still give
        each trial its own adversary RNG stream and statistics.
        """
        receptions = {
            listener: (sender, transmissions[sender])
            for listener, sender in raw.items()
        }
        if self.alive is not None:
            # Churn: a crashed node's radio is off — its decodes vanish
            # before the adversary (or any counter) ever sees them.
            # Crashed nodes never appear as senders (the runtimes skip
            # them in phase 1), so only the listener side needs masking.
            alive = self.alive
            receptions = {
                listener: payload
                for listener, payload in receptions.items()
                if alive[listener]
            }
        if self.adversary is not None:
            receptions = self.adversary.filter(self._slot_count, receptions)
        self._slot_count += 1
        self.total_transmissions += len(transmissions)
        self.total_receptions += len(receptions)
        return SlotOutcome(
            transmitters=tuple(int(t) for t in tx_ids),
            receptions=receptions,
        )

    def link_sinr(
        self, sender: int, listener: int, transmitters: list[int]
    ) -> float:
        """SINR of a specific link under a hypothetical transmitter set.

        Convenience probe used by tests and the lower-bound experiments;
        does not advance the slot counter.  Always evaluates the
        deterministic geometry (no fading draw is consumed), so probing
        never perturbs a stochastic trial's channel stream.
        """
        tx = np.asarray(sorted(set(transmitters) | {sender}), dtype=np.intp)
        return sinr_of_link(self.params, self.distances, tx, sender, listener)

    def reset_stats(self) -> None:
        """Zero the utilization counters (slot counter is preserved)."""
        self.total_transmissions = 0
        self.total_receptions = 0
