"""SINR (physical) wireless model substrate.

Implements the reception rule of paper Eq. (1), the transmission-range
algebra (R, R_a), and the SINR-induced connectivity graphs G_a of §4.3,
including the strong connectivity graphs G_{1-ε} and G_{1-2ε} that the
absMAC is implemented and analyzed over.
"""

from repro.sinr.params import ChannelModel, SINRParameters
from repro.sinr.physics import (
    received_power,
    interference_at,
    rayleigh_gains,
    sinr_matrix,
    sinr_of_link,
    successful_receptions,
)
from repro.sinr.channel import (
    Channel,
    GrayZoneAdversary,
    JammingAdversary,
    SlotOutcome,
)
from repro.sinr.graphs import (
    induced_graph,
    strong_connectivity_graph,
    weak_connectivity_graph,
    link_length_ratio,
    graph_degree,
    graph_diameter,
)

__all__ = [
    "ChannelModel",
    "SINRParameters",
    "rayleigh_gains",
    "received_power",
    "interference_at",
    "sinr_matrix",
    "sinr_of_link",
    "successful_receptions",
    "Channel",
    "GrayZoneAdversary",
    "JammingAdversary",
    "SlotOutcome",
    "induced_graph",
    "strong_connectivity_graph",
    "weak_connectivity_graph",
    "link_length_ratio",
    "graph_degree",
    "graph_diameter",
]
