"""The O(n²) physics wall vs. the sparse spatial-grid SINR resolver.

Every dense slot resolution rides two ``(n, n)`` matrices — pairwise
distances and uniform-power gains — whose construction alone is O(n²)
time *and* memory (1.6 GB of temporaries at n = 10 000).  The paper's
algorithms only ever decode within the transmission range, so the
physics is local; :class:`~repro.sinr.sparse.SparseResolver` exploits
that with a spatial grid hash (the PR-4 idea pushed down to the physics
layer) and never materializes a dense matrix.

This benchmark times the wall end-to-end at the physics layer, per
network size: build the geometry artifacts (dense matrices vs. sparse
grid) and resolve a fixed seeded transmission schedule through them.

* **sparse-exact-n{N}** rows pit the exact sparse mode (bit-identical
  decode contract) against the dense kernel.  ``bit_identical`` — slot
  decode dicts equal *including insertion order* — is asserted
  unconditionally; under ``REPRO_BENCH_STRICT=1`` the rows at
  n ≥ ``GATE_N`` must clear ``MIN_EXACT_SPEEDUP``.
* **sparse-farfield-n{N}** rows measure the approximate mode (beyond-
  radius interference aggregated per cell under the ε relative-error
  bound) and record its ``decode_divergence`` — the fraction of dense
  decodes that differ.  ε-band divergence is legal by contract; the
  property suite (``tests/test_sparse_physics_properties.py``) pins the
  actual error bound, the benchmark records how often it matters.
* **sparse-dispatch-n{N}** rows time what a :class:`Channel` built with
  the sparse spec *actually* routes to: below the ``min_n`` crossover
  the resolver is never built and the dense kernels run (the n = 1000
  row pins that small deployments no longer pay the sparse regression
  this file originally measured — 0.61x exact at n = 1000), above it
  the resolver handles the slot.  ``sparse_active`` records which side
  of the crossover the row landed on.

All rows are counters-only (``record_physical: false``) and carry a
``speedup``, so they ride the CI ``bench-compare`` 20% regression gate
exactly like the executor benchmarks.  Timings use
``time.process_time`` (single-core CPU seconds, best of ``rounds``).
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.harness import format_table
from repro.geometry.deployment import uniform_disk
from repro.geometry.points import pairwise_distances
from repro.sinr.channel import Channel
from repro.sinr.params import SINRParameters, SparseResolution
from repro.sinr.physics import gain_matrix, successful_receptions
from repro.sinr.sparse import SparseResolver

# -- the size sweep ----------------------------------------------------------

NS = (1000, 2500, 5000, 10000)
TARGET_DEGREE = 16  # expected in-range neighbours per node (density knob)
DEPLOY_SEED = 33

# -- the transmission schedule -----------------------------------------------

BROADCASTERS = 256  # active-subset size (low contention: the sparse regime)
TX_PROB = 0.25
SLOTS = 40
SCHEDULE_SEED = 7

# -- farfield approximation --------------------------------------------------

EPSILON = 0.05

# -- gates -------------------------------------------------------------------

ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "2"))
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"
GATE_N = 5000
# The dense O(n²) reference is memory-bound and its wall time swings
# ~2x with host memory conditions (observed 1.26 s .. 2.58 s at
# n = 5000 for identical code); the floor must clear the swing's low
# side, not the high side's flattering ratio.
MIN_EXACT_SPEEDUP = 3.0
# Crossover rows: one size each side of the default min_n.  Below it
# the Channel must stay within measurement noise of the plain dense
# path (the sparse detour it used to take cost ~40% at n = 1000).
DISPATCH_NS = (1000, 2500)
MIN_DISPATCH_SPEEDUP = 0.9

_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = _ROOT / "BENCH_sparse.json"


def _deployment(n: int):
    """Constant-density disk: radius scales with √n.

    The disk radius is chosen so the expected number of in-range
    neighbours stays at ``TARGET_DEGREE`` regardless of n — the regime
    where the physics is genuinely local and a dense O(n²) resolution
    is pure waste.
    """
    params = SINRParameters()
    radius = params.transmission_range * math.sqrt(n / TARGET_DEGREE)
    return uniform_disk(n, radius=radius, seed=DEPLOY_SEED), params


def _schedule(n: int) -> list[np.ndarray]:
    """Seeded per-slot transmitter sets from a fixed active subset."""
    rng = np.random.default_rng(SCHEDULE_SEED + n)
    pool = np.sort(
        rng.choice(n, size=min(BROADCASTERS, n), replace=False)
    ).astype(np.intp)
    slots = []
    for _ in range(SLOTS):
        tx = pool[rng.random(pool.size) < TX_PROB]
        if tx.size == 0:  # a silent slot measures nothing
            tx = pool[:1]
        slots.append(tx)
    return slots


def _time_dense(points, params, schedule, rounds):
    """Artifact build + slot loop through the dense kernel."""
    best, decodes = None, None
    for _ in range(rounds):
        start = time.process_time()
        distances = pairwise_distances(points.coords)
        gains = gain_matrix(params, distances)
        decodes = [
            list(
                successful_receptions(
                    params, distances, tx, gains=gains
                ).items()
            )
            for tx in schedule
        ]
        elapsed = time.process_time() - start
        best = elapsed if best is None else min(best, elapsed)
        del distances, gains  # free the O(n²) arrays between rounds
    return decodes, best


def _time_sparse(points, params, schedule, rounds):
    """Grid build + slot loop through the sparse resolver."""
    best, decodes = None, None
    for _ in range(rounds):
        start = time.process_time()
        resolver = SparseResolver(points, params)
        decodes = [list(resolver.resolve(tx).items()) for tx in schedule]
        elapsed = time.process_time() - start
        best = elapsed if best is None else min(best, elapsed)
    return decodes, best


def _time_dispatch(points, params, schedule, rounds):
    """Channel build + slot loop through whatever the min_n crossover
    actually routes to (dense kernels below, sparse resolver above)."""
    best, decodes, sparse_active = None, None, False
    for _ in range(rounds):
        start = time.process_time()
        channel = Channel(points, params)
        decodes = [list(channel.resolve_raw(tx).items()) for tx in schedule]
        elapsed = time.process_time() - start
        best = elapsed if best is None else min(best, elapsed)
        sparse_active = channel.sparse_active
    return decodes, best, sparse_active


def _divergence(dense, other) -> float:
    """Fraction of dense decodes not reproduced exactly (by slot)."""
    total = sum(len(slot) for slot in dense)
    if total == 0:
        return 0.0
    differing = sum(
        len(set(d) ^ set(o)) for d, o in zip(dense, other)
    )
    return differing / (2 * total)


def run_benchmark(rounds: int = ROUNDS) -> dict:
    rows = []
    for n in NS:
        points, params = _deployment(n)
        schedule = _schedule(n)
        tx_mean = float(np.mean([tx.size for tx in schedule]))
        dense_decodes, dense_time = _time_dense(
            points, params, schedule, rounds
        )
        common = {
            "n": n,
            "slots": SLOTS,
            "tx_per_slot_mean": round(tx_mean, 1),
            "record_physical": False,
            "dense_seconds": round(dense_time, 3),
        }
        exact_params = SINRParameters(sparse=SparseResolution(mode="exact"))
        exact_decodes, exact_time = _time_sparse(
            points, exact_params, schedule, rounds
        )
        rows.append(
            {
                "workload": f"sparse-exact-n{n}",
                "mode": "exact",
                **common,
                "sparse_seconds": round(exact_time, 3),
                "speedup": round(dense_time / exact_time, 2),
                "bit_identical": exact_decodes == dense_decodes,
                "decode_divergence": _divergence(
                    dense_decodes, exact_decodes
                ),
            }
        )
        far_params = SINRParameters(
            sparse=SparseResolution(mode="farfield", epsilon=EPSILON)
        )
        far_decodes, far_time = _time_sparse(
            points, far_params, schedule, rounds
        )
        rows.append(
            {
                "workload": f"sparse-farfield-n{n}",
                "mode": "farfield",
                "epsilon": EPSILON,
                **common,
                "sparse_seconds": round(far_time, 3),
                "speedup": round(dense_time / far_time, 2),
                "bit_identical": far_decodes == dense_decodes,
                "decode_divergence": round(
                    _divergence(dense_decodes, far_decodes), 6
                ),
            }
        )
        if n in DISPATCH_NS:
            # What a Channel with the (default-min_n) sparse spec
            # actually does at this size — the crossover guard's row.
            dispatch_decodes, dispatch_time, sparse_active = _time_dispatch(
                points, exact_params, schedule, rounds
            )
            rows.append(
                {
                    "workload": f"sparse-dispatch-n{n}",
                    "mode": "dispatch",
                    "min_n": exact_params.sparse.min_n,
                    "sparse_active": sparse_active,
                    **common,
                    "sparse_seconds": round(dispatch_time, 3),
                    "speedup": round(dense_time / dispatch_time, 2),
                    "bit_identical": dispatch_decodes == dense_decodes,
                    "decode_divergence": _divergence(
                        dense_decodes, dispatch_decodes
                    ),
                }
            )
    return {
        "benchmark": "sparse-sinr",
        "config": {
            "ns": list(NS),
            "target_degree": TARGET_DEGREE,
            "broadcasters": BROADCASTERS,
            "tx_prob": TX_PROB,
            "slots": SLOTS,
            "epsilon": EPSILON,
            "dispatch_ns": list(DISPATCH_NS),
            "min_n_default": SparseResolution().min_n,
            "timer": "process_time (single-core CPU s, best of rounds)",
            "rounds": rounds,
        },
        "rows": rows,
    }


@pytest.mark.benchmark(group="sparse-sinr")
def test_sparse_sinr_wall(benchmark, emit):
    report = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    rows = report["rows"]
    emit(
        "",
        "=== Sparse grid vs. the dense O(n²) physics wall ===",
        format_table(
            ["workload", "dense s", "sparse s", "speedup", "divergence"],
            [
                [
                    r["workload"],
                    f"{r['dense_seconds']:.3f}",
                    f"{r['sparse_seconds']:.3f}",
                    f"{r['speedup']:.2f}x",
                    f"{r['decode_divergence']:.2%}",
                ]
                for r in rows
            ],
        ),
        f"recorded to {OUTPUT.name}",
    )

    # The exact mode's defining contract, unconditionally: decode dicts
    # equal including insertion order, at every size.  Dispatch rows
    # inherit it on both sides of the crossover (dense route trivially,
    # sparse route by the exact-mode contract).
    for row in rows:
        if row["mode"] in ("exact", "dispatch"):
            assert row["bit_identical"], row["workload"]
            assert row["decode_divergence"] == 0.0
        else:
            # ε-band flips only: the farfield mode may diverge, but a
            # blowup means the approximation contract is broken.
            assert row["decode_divergence"] < 0.05, row["workload"]
    # The crossover itself: small deployments must not build a resolver.
    for row in rows:
        if row["mode"] == "dispatch":
            assert row["sparse_active"] == (row["n"] >= row["min_n"]), (
                f"{row['workload']}: crossover routed to the wrong side"
            )
    if STRICT:
        for row in rows:
            if row["mode"] == "exact" and row["n"] >= GATE_N:
                assert row["speedup"] >= MIN_EXACT_SPEEDUP, (
                    f"{row['workload']}: sparse resolver no longer beats "
                    f"the dense wall: {row['speedup']:.2f}x < "
                    f"{MIN_EXACT_SPEEDUP}x"
                )
            if row["mode"] == "dispatch":
                # The row this guard exists for: n = 1000 used to pay
                # 0.61x by routing sparse; dispatch must stay within
                # noise of the dense path below the crossover (and may
                # only win above it).
                assert row["speedup"] >= MIN_DISPATCH_SPEEDUP, (
                    f"{row['workload']}: dispatch overhead regressed: "
                    f"{row['speedup']:.2f}x < {MIN_DISPATCH_SPEEDUP}x"
                )
