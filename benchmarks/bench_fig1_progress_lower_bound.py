"""Figure 1 / Theorem 6.1: the f_prog >= Δ impossibility.

The two-parallel-lines geometry (drawn in Figure 1 with Δ = 5) forces
any implementation — even an omniscient centralized scheduler — to
leave some receiver waiting Δ slots for progress, because any two
concurrent cross transmissions annihilate each other's SINR.

This benchmark (a) replays the figure's Δ = 5 instance, (b) sweeps Δ
and verifies the optimal schedule's worst-case progress equals Δ
*exactly*, and (c) confirms the escape hatch the paper builds on:
the cross links vanish from G̃ = G_{1-2ε}, so the *approximate*
progress contract (Definition 7.1) is not bound by this Δ floor.
"""

from __future__ import annotations

import pytest

from repro.analysis.harness import format_table
from repro.lowerbounds.constructions import ProgressLowerBoundNetwork
from repro.lowerbounds.experiments import (
    optimal_schedule_progress,
    power_controlled_progress,
)

DELTAS = (2, 4, 8, 16, 32, 64)
POWER_DELTAS = (5, 10, 20)


def run_sweep() -> list[dict]:
    rows = []
    for delta in DELTAS:
        network = ProgressLowerBoundNetwork(delta=delta)
        network.verify_structure()
        result = optimal_schedule_progress(network)
        cross_tilde = sum(
            1
            for v in network.v_nodes
            if network.approx_graph.has_edge(v, network.partner(v))
        )
        rows.append(
            {
                "delta": delta,
                "max_progress": result["max_progress"],
                "served_all": result["served_all"],
                "concurrent": result["concurrent_receptions"],
                "cross_in_gtilde": cross_tilde,
            }
        )
    return rows


@pytest.mark.benchmark(group="fig1-progress-lb")
def test_fig1_progress_lower_bound(benchmark, emit):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        "",
        "=== Figure 1 / Thm 6.1: optimal-schedule progress on the",
        "    two-line network (f_prog >= Δ, any implementation) ===",
        format_table(
            [
                "Δ",
                "max progress (opt. sched.)",
                "served all",
                "concurrent rx",
                "cross links in G̃",
            ],
            [
                [
                    r["delta"],
                    r["max_progress"],
                    r["served_all"],
                    r["concurrent"],
                    r["cross_in_gtilde"],
                ]
                for r in rows
            ],
        ),
    )
    for r in rows:
        # The theorem, exactly: the best possible schedule needs Δ slots.
        assert r["max_progress"] == r["delta"]
        assert r["served_all"]
        # Mechanism: two concurrent cross links deliver nothing.
        assert r["concurrent"] == 0
        # Escape hatch: these worst-case links are not in G_{1-2eps},
        # so approximate progress is exempt from the Δ floor.
        assert r["cross_in_gtilde"] == 0
    emit(
        "lower bound reproduced: progress = Δ for every Δ; the cross",
        "links are absent from G̃, so Definition 7.1 sidesteps the bound.",
    )


def run_power_sweep() -> list[dict]:
    rows = []
    for delta in POWER_DELTAS:
        network = ProgressLowerBoundNetwork(delta=delta)
        result = power_controlled_progress(
            network, concurrency=4, trials=300, power_spread=100.0, seed=1
        )
        result["delta"] = delta
        rows.append(result)
    return rows


@pytest.mark.benchmark(group="fig1-progress-lb")
def test_fig1_power_control_does_not_help(benchmark, emit):
    """Theorem 6.1's strongest clause: the Δ floor survives arbitrary
    power assignments chosen by an omniscient scheduler."""
    rows = benchmark.pedantic(run_power_sweep, rounds=1, iterations=1)
    emit(
        "",
        "=== Thm 6.1 (power control): 4 concurrent cross pairs, random",
        "    powers in [P, 100P], 300 trials per Δ ===",
        format_table(
            [
                "Δ",
                "max successes/slot",
                "mean successes/slot",
                "implied f_prog >=",
            ],
            [
                [
                    r["delta"],
                    r["max_cross_successes_per_slot"],
                    f"{r['mean_cross_successes_per_slot']:.3f}",
                    f"{r['implied_fprog_lower_bound']:.0f}",
                ]
                for r in rows
            ],
        ),
    )
    for r in rows:
        # No power assignment ever pushed two cross pairs through.
        assert r["max_cross_successes_per_slot"] <= 1
        assert r["implied_fprog_lower_bound"] >= r["delta"]
    emit(
        "power control never served two pairs at once: the geometry "
        "makes boosting self-defeating, so f_prog >= Δ stands."
    )
