"""Service load generator: jobs/sec and submit-to-result latency.

The job server's contract is operational, not algorithmic — results are
bit-identical to ``run_trials`` by construction (asserted here on every
level), so what this benchmark measures is the *service overhead*:
queueing, sharding, cross-process dispatch, and plan-order streaming,
under concurrent submission pressure.

Shape: one long-lived :class:`~repro.service.server.SimulationService`
(embedded façade — the same JobQueue/Scheduler/worker path the TCP
front drives, minus socket framing, so the numbers isolate the service
machinery rather than loopback TCP).  At each level ``c`` in
``LEVELS = (10, 100, 1000)``, ``c`` single-plan jobs with distinct
seeds are submitted from a capped thread pool; each submitter clocks
its own submit→final-result wall latency.  Recorded per level
(``BENCH_service.json``): jobs/sec for the whole level and p50/p99
latency in milliseconds.

These rows are counters-only and carry no ``speedup`` field:
``scripts/bench_compare.py`` gates their *presence* (a vanished level
fails the build) while warn-skipping the speedup ratio — wall-clock
throughput on a shared CI box is too noisy to gate a build on, but the
schema and the recorder must not rot.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.analysis.harness import format_table
from repro.core.decay import DecayConfig
from repro.experiments import (
    DeploymentSpec,
    ExecutionPolicy,
    TrialPlan,
    run_trials,
)
from repro.service import SimulationService

N = 10
RADIUS = 6.0
SLOTS = 30
WORKERS = 2
LEVELS = (10, 100, 1000)
MAX_SUBMITTERS = 64  # client-side cap; recorded in the report config
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"
_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = _ROOT / "BENCH_service.json"

DEPLOYMENT = DeploymentSpec.of("uniform_disk", n=N, radius=RADIUS, seed=5)


def make_job(seed: int) -> list[TrialPlan]:
    """One tiny counters-only job; distinct seeds defeat the
    duplicate-submission cache so every job exercises the pool."""
    return [
        TrialPlan(
            deployment=DEPLOYMENT,
            stack="decay",
            workload="fixed_slots",
            options=TrialPlan.pack_options(slots=SLOTS),
            decay_config=DecayConfig(contention_bound=16.0),
            record_physical=False,
            seed=seed,
            label=f"svc-load-{seed}",
        )
    ]


def run_level(service: SimulationService, level: int, seed_base: int) -> dict:
    """Submit ``level`` concurrent jobs; measure throughput + latency."""
    def submit_one(seed: int) -> float:
        start = time.perf_counter()
        job = service.submit(make_job(seed), ExecutionPolicy())
        job.wait(timeout=600.0)
        return (time.perf_counter() - start) * 1000.0

    submitters = min(level, MAX_SUBMITTERS)
    wall_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=submitters) as pool:
        latencies = list(
            pool.map(submit_one, range(seed_base, seed_base + level))
        )
    wall = time.perf_counter() - wall_start
    latencies.sort()
    return {
        "workload": f"service-c{level}",
        "concurrency": level,
        "submitters": submitters,
        "jobs": level,
        "jobs_per_sec": round(level / wall, 2),
        "p50_ms": round(statistics.median(latencies), 2),
        "p99_ms": round(latencies[min(level - 1, int(level * 0.99))], 2),
        "wall_seconds": round(wall, 3),
    }


def run_load(levels=None) -> dict:
    levels = LEVELS if levels is None else levels
    with SimulationService(workers=WORKERS) as service:
        # The correctness pin, before any load: a served job is
        # bit-identical to the library call.
        probe = make_job(seed=0)
        served = service.results(service.submit(probe).job_id, timeout=600.0)
        assert served == run_trials(probe), "service diverged from library"

        rows = []
        seed_base = 1
        for level in levels:
            rows.append(run_level(service, level, seed_base))
            seed_base += level
        stats = service.stats()
    return {
        "benchmark": "service-load",
        "config": {
            "n": N,
            "radius": RADIUS,
            "slots": SLOTS,
            "workers": WORKERS,
            "levels": list(levels),
            "max_submitters": MAX_SUBMITTERS,
            "transport": "embedded",
            "timer": "perf_counter (wall ms, submit to final result)",
        },
        "service_stats": {
            "submitted": stats["submitted"],
            "shards_dispatched": stats["shards_dispatched"],
            "workers_respawned": stats["workers_respawned"],
        },
        "rows": rows,
    }


@pytest.mark.benchmark(group="service-load")
def test_service_load(benchmark, emit):
    report = benchmark.pedantic(run_load, rounds=1, iterations=1)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    rows = report["rows"]
    emit(
        "",
        "=== Service load: concurrent single-plan submissions ===",
        format_table(
            ["level", "jobs/sec", "p50 (ms)", "p99 (ms)", "wall (s)"],
            [
                [
                    r["workload"],
                    f"{r['jobs_per_sec']:.1f}",
                    f"{r['p50_ms']:.1f}",
                    f"{r['p99_ms']:.1f}",
                    f"{r['wall_seconds']:.1f}",
                ]
                for r in rows
            ],
        ),
        f"workers: {report['config']['workers']}, recorded to {OUTPUT.name}",
    )

    # Schema invariants (the compare gate checks row presence; these
    # keep the recorder itself honest).
    assert [r["concurrency"] for r in rows] == list(LEVELS)
    for row in rows:
        assert row["jobs_per_sec"] > 0
        assert row["p50_ms"] <= row["p99_ms"]
    if STRICT:
        # No crashed workers under load, and every job hit the pool
        # (distinct seeds: the duplicate cache must not have fired).
        assert report["service_stats"]["workers_respawned"] == 0
        assert report["service_stats"]["shards_dispatched"] >= sum(LEVELS)
