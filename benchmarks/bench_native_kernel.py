"""Native fused slot loop: before/after on 1000-node, 8-seed sweeps.

The columnar executor (``BENCH_vectorized.json``) removed the per-node
object dispatch, but every slot of a counters-only sweep still pays
~20 numpy calls and their temporaries.  The native backend
(:mod:`repro.native`) fuses the whole slot — transmit decision from the
pre-drawn uniforms, dense gain gather, SINR reduce, decode, dedup,
kernel step — into one C loop that advances thousands of slots per
Python call.  This benchmark measures exactly that substitution: the
same counters-only plans run through ``run_trials`` with
``native=False`` (the pure-numpy columnar reference) and ``native=None``
(auto-selected backend), asserting bit-identical results — and, for
context, through ``vectorize=False`` (the object runtime).

Output (``BENCH_native.json``): one row per protocol kernel, each
1000 nodes × 8 seeds × 1000 slots — Decay under a conservative
polynomial contention bound (30-step probability sweeps) and Ack under
a mid-size bound (real fallback/doubling traffic).  Every row carries a
``backend`` field naming what the auto-selected leg actually ran:
``"native"`` when the compiled kernel is built, ``"numpy"`` under the
fallback — ``scripts/bench_compare.py`` skips the speedup gate when
baseline and fresh record disagree on it, so a machine without a C
compiler records honestly instead of hard-failing.

Two PR-10 row families ride along:

* **sparse-native-n{N}** rows run counters-only sparse-*exact* plans at
  n ∈ {5000, 10000} through the CSR decode path of the C kernel vs the
  numpy sparse resolver, asserting the exact-mode decode contract
  (bit-identical results) and recording the speedup.
* **native-decay-threads** rows run the decay headline sweep with the
  trial-parallel thread pool (``native_threads``), 1 thread vs
  ``THREADS``, timed with ``time.perf_counter`` (threads only shape
  *wall-clock*; ``process_time`` would sum the cores away).  Results
  must be bit-identical across thread counts; the ≥2x speedup bar only
  applies when the host actually has ``THREADS`` cores, and the row's
  ``backend`` field carries the core count so ``bench_compare`` skips
  apples-to-oranges comparisons between hosts of different widths.

All other timings use ``time.process_time`` (single-core CPU seconds),
best of ``rounds``, so a noisy CI neighbour cannot fake a regression or
a win.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import pytest

from repro import native
from repro.analysis.harness import format_table
from repro.core.ack_protocol import AckConfig
from repro.core.decay import DecayConfig
from repro.experiments import (
    DeploymentSpec,
    ExecutionPolicy,
    TrialPlan,
    deployment_artifacts,
    resolve_deployment,
    run_trials,
    seeded_plans,
)
from repro.simulation.rng import spawn_trial_seeds
from repro.sinr.params import SINRParameters, SparseResolution

N = 1000
SEEDS = 8
SLOTS = 1000
RADIUS = 175.0
DECAY_CONTENTION = 2**30  # conservative poly(N) bound: 30-step sweeps
ACK_CONTENTION = 4096.0  # mid-size bound: real doubling/fallback traffic
# Sparse-native rows: constant-density disks (the sparse regime) at the
# sizes where the resolver beats the dense wall outright.
SPARSE_NS = (5000, 10000)
SPARSE_SEEDS = 2
SPARSE_SLOTS = 200
SPARSE_TARGET_DEGREE = 16
# Trial-parallel rows: threads partition the trials axis in C.
THREADS = 4
CORES = os.cpu_count() or 1
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "2"))
# Absolute bars are the PR acceptance criteria, asserted on full
# `make bench` runs; `make bench-record` sets REPRO_BENCH_STRICT=0 and
# leaves the *relative* gate to scripts/bench_compare.py.  Bit-identity
# is asserted unconditionally, whichever backend ran.
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"
MIN_SPEEDUP = 2.5  # native vs pure-numpy columnar, decay headline row
MIN_ROW_SPEEDUP = 2.0  # every row, with CI headroom
MIN_OBJECT_SPEEDUP = 8.0  # every row vs object runtime, decay headline row
MIN_SPARSE_SPEEDUP = 2.0  # CSR decode path vs the numpy sparse resolver
MIN_THREAD_SPEEDUP = 2.0  # 4 threads vs 1, only on hosts with the cores
_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = _ROOT / "BENCH_native.json"


def make_plans(stack: str) -> list[TrialPlan]:
    config = (
        dict(decay_config=DecayConfig(contention_bound=DECAY_CONTENTION))
        if stack == "decay"
        else dict(ack_config=AckConfig(contention_bound=ACK_CONTENTION))
    )
    base = TrialPlan(
        deployment=DeploymentSpec.of(
            "uniform_disk", n=N, radius=RADIUS, seed=9
        ),
        stack=stack,
        workload="fixed_slots",
        options=TrialPlan.pack_options(slots=SLOTS),
        record_physical=False,
        label=f"native-{stack}",
        **config,
    )
    return seeded_plans(base, spawn_trial_seeds(SEEDS, seed=7))


def make_sparse_plans(n: int) -> list[TrialPlan]:
    """Counters-only sparse-exact decay plans on a constant-density disk
    (expected in-range degree ``SPARSE_TARGET_DEGREE`` — the local-
    physics regime the CSR candidate lists exploit)."""
    params = SINRParameters(sparse=SparseResolution(mode="exact"))
    radius = params.transmission_range * math.sqrt(
        n / SPARSE_TARGET_DEGREE
    )
    base = TrialPlan(
        deployment=DeploymentSpec.of(
            "uniform_disk", n=n, radius=radius, seed=9
        ),
        stack="decay",
        workload="fixed_slots",
        options=TrialPlan.pack_options(slots=SPARSE_SLOTS),
        record_physical=False,
        params=params,
        decay_config=DecayConfig(contention_bound=DECAY_CONTENTION),
        label=f"sparse-native-n{n}",
    )
    return seeded_plans(base, spawn_trial_seeds(SPARSE_SEEDS, seed=7))


def time_run(plans, rounds: int, policy: ExecutionPolicy, timer=None):
    """Best-of-``rounds`` timing of one executor leg.

    The default timer is ``process_time`` (single-core CPU seconds);
    thread-pool legs pass ``perf_counter``, because CPU seconds sum
    across cores and would erase exactly the win being measured.
    """
    timer = timer or time.process_time
    best = None
    results = None
    for _ in range(rounds):
        start = timer()
        results = run_trials(plans, policy)
        elapsed = timer() - start
        best = elapsed if best is None else min(best, elapsed)
    return results, best


def run_comparison(rounds: int = ROUNDS) -> dict:
    backend = "native" if native.available() else "numpy"
    rows = []
    for stack in ("decay", "ack"):
        plans = make_plans(stack)
        # Warm the shared artifact cache: all three legs ride the same
        # per-deployment distances/gains/graphs.
        points = resolve_deployment(plans[0].deployment)
        deployment_artifacts(points, plans[0].params)

        auto, auto_time = time_run(
            plans, rounds, ExecutionPolicy(vectorize=True, native=None)
        )
        ref, ref_time = time_run(
            plans, rounds, ExecutionPolicy(vectorize=True, native=False)
        )
        obj, obj_time = time_run(
            plans, max(1, rounds - 1), ExecutionPolicy(vectorize=False)
        )
        rows.append(
            {
                "workload": f"native-{stack}",
                "backend": backend,
                "n": N,
                "seeds": SEEDS,
                "slots": SLOTS,
                "numpy_seconds": round(ref_time, 3),
                "native_seconds": round(auto_time, 3),
                "object_seconds": round(obj_time, 3),
                "speedup": round(ref_time / auto_time, 2),
                "speedup_vs_object": round(obj_time / auto_time, 2),
                "bit_identical": auto == ref == obj,
                "transmissions_per_trial": int(auto[0].transmissions),
                "receptions_per_trial": int(auto[0].receptions),
            }
        )

    # Sparse-native rows: the CSR decode path vs the per-slot numpy
    # sparse resolver, same plans, same exact-mode decode contract.
    for n in SPARSE_NS:
        plans = make_sparse_plans(n)
        points = resolve_deployment(plans[0].deployment)
        deployment_artifacts(points, plans[0].params)
        sparse_rounds = max(1, rounds - 1)
        auto, auto_time = time_run(
            plans, sparse_rounds, ExecutionPolicy(vectorize=True, native=None)
        )
        ref, ref_time = time_run(
            plans,
            sparse_rounds,
            ExecutionPolicy(vectorize=True, native=False),
        )
        rows.append(
            {
                "workload": f"sparse-native-n{n}",
                "backend": backend,
                "n": n,
                "seeds": SPARSE_SEEDS,
                "slots": SPARSE_SLOTS,
                "numpy_seconds": round(ref_time, 3),
                "native_seconds": round(auto_time, 3),
                "speedup": round(ref_time / auto_time, 2),
                "bit_identical": auto == ref,
                "transmissions_per_trial": int(auto[0].transmissions),
                "receptions_per_trial": int(auto[0].receptions),
            }
        )

    # Trial-parallel row: same decay sweep, 1 kernel thread vs THREADS,
    # wall-clock.  The backend field carries the host width so
    # bench_compare never compares thread scaling across machines with
    # different core counts.
    plans = make_plans("decay")
    threaded_backend = (
        f"{backend}-c{CORES}" if backend == "native" else backend
    )
    one, one_time = time_run(
        plans,
        rounds,
        ExecutionPolicy(vectorize=True, native=None, native_threads=1),
        timer=time.perf_counter,
    )
    many, many_time = time_run(
        plans,
        rounds,
        ExecutionPolicy(vectorize=True, native=None, native_threads=THREADS),
        timer=time.perf_counter,
    )
    rows.append(
        {
            "workload": f"native-decay-threads{THREADS}",
            "backend": threaded_backend,
            "threads": THREADS,
            "cores": CORES,
            "n": N,
            "seeds": SEEDS,
            "slots": SLOTS,
            "single_thread_seconds": round(one_time, 3),
            "threaded_seconds": round(many_time, 3),
            "speedup": round(one_time / many_time, 2),
            "bit_identical": one == many,
            "timer": "perf_counter (wall s, best of rounds)",
        }
    )

    return {
        "benchmark": "native-kernel",
        "config": {
            "n": N,
            "seeds": SEEDS,
            "slots": SLOTS,
            "radius": RADIUS,
            "decay_contention_bound": DECAY_CONTENTION,
            "ack_contention_bound": ACK_CONTENTION,
            "sparse_ns": list(SPARSE_NS),
            "sparse_seeds": SPARSE_SEEDS,
            "sparse_slots": SPARSE_SLOTS,
            "sparse_target_degree": SPARSE_TARGET_DEGREE,
            "threads": THREADS,
            "cores": CORES,
            "backend": backend,
            "timer": "process_time (single-core CPU s, best of rounds); "
            "perf_counter (wall s) for the threads row",
            "rounds": rounds,
        },
        "rows": rows,
    }


@pytest.mark.benchmark(group="native-kernel")
def test_native_kernel_speedup(benchmark, emit):
    report = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    rows = report["rows"]
    backend = report["config"]["backend"]
    dense_rows = [r for r in rows if r["workload"].startswith("native-")
                  and "threads" not in r["workload"]]
    sparse_rows = [r for r in rows if r["workload"].startswith("sparse-")]
    thread_rows = [r for r in rows if "threads" in r["workload"]]
    emit(
        "",
        "=== Native slot loop: 1000-node / 8-seed counters-only sweeps ===",
        format_table(
            ["kernel", "numpy (s)", "native (s)", "object (s)", "speedup",
             "vs object", "identical"],
            [
                [
                    r["workload"],
                    f"{r['numpy_seconds']:.2f}",
                    f"{r['native_seconds']:.2f}",
                    f"{r['object_seconds']:.2f}",
                    f"{r['speedup']:.2f}x",
                    f"{r['speedup_vs_object']:.2f}x",
                    r["bit_identical"],
                ]
                for r in dense_rows
            ],
        ),
        "=== Sparse-native CSR decode path ===",
        format_table(
            ["workload", "numpy (s)", "native (s)", "speedup", "identical"],
            [
                [
                    r["workload"],
                    f"{r['numpy_seconds']:.2f}",
                    f"{r['native_seconds']:.2f}",
                    f"{r['speedup']:.2f}x",
                    r["bit_identical"],
                ]
                for r in sparse_rows
            ],
        ),
        "=== Trial-parallel threading (wall-clock) ===",
        format_table(
            ["workload", "1 thread (s)", f"{THREADS} threads (s)",
             "speedup", "cores", "identical"],
            [
                [
                    r["workload"],
                    f"{r['single_thread_seconds']:.2f}",
                    f"{r['threaded_seconds']:.2f}",
                    f"{r['speedup']:.2f}x",
                    r["cores"],
                    r["bit_identical"],
                ]
                for r in thread_rows
            ],
        ),
        f"backend: {backend}, recorded to {OUTPUT.name}",
    )

    # The defining contract, whichever backend or thread count ran:
    # many executors, one result.
    assert all(r["bit_identical"] for r in rows)
    if STRICT and backend == "native":
        # The acceptance bars: the fused loop must beat the pure-numpy
        # columnar path >= 2.5x on the decay headline row (>= 2x on
        # every dense row) and the object runtime >= 8x; the CSR decode
        # path must beat the per-slot numpy sparse resolver >= 2x.
        assert dense_rows[0]["speedup"] >= MIN_SPEEDUP, (
            f"native speedup regressed: {dense_rows[0]['speedup']:.2f}x < "
            f"{MIN_SPEEDUP}x"
        )
        for r in dense_rows:
            assert r["speedup"] >= MIN_ROW_SPEEDUP, (
                f"{r['workload']} native speedup regressed: "
                f"{r['speedup']:.2f}x < {MIN_ROW_SPEEDUP}x"
            )
        headline = dense_rows[0]["speedup_vs_object"]
        assert headline >= MIN_OBJECT_SPEEDUP, (
            f"native vs object regressed: {headline:.2f}x < "
            f"{MIN_OBJECT_SPEEDUP}x"
        )
        for r in sparse_rows:
            assert r["speedup"] >= MIN_SPARSE_SPEEDUP, (
                f"{r['workload']} sparse-native speedup regressed: "
                f"{r['speedup']:.2f}x < {MIN_SPARSE_SPEEDUP}x"
            )
        # Thread scaling is a wall-clock property of the host: the >=2x
        # bar is only meaningful when the machine actually has the
        # cores to run THREADS workers in parallel.
        if CORES >= THREADS:
            for r in thread_rows:
                assert r["speedup"] >= MIN_THREAD_SPEEDUP, (
                    f"{r['workload']}: {THREADS}-thread speedup "
                    f"{r['speedup']:.2f}x < {MIN_THREAD_SPEEDUP}x on a "
                    f"{CORES}-core host"
                )
