"""Native fused slot loop: before/after on 1000-node, 8-seed sweeps.

The columnar executor (``BENCH_vectorized.json``) removed the per-node
object dispatch, but every slot of a counters-only sweep still pays
~20 numpy calls and their temporaries.  The native backend
(:mod:`repro.native`) fuses the whole slot — transmit decision from the
pre-drawn uniforms, dense gain gather, SINR reduce, decode, dedup,
kernel step — into one C loop that advances thousands of slots per
Python call.  This benchmark measures exactly that substitution: the
same counters-only plans run through ``run_trials`` with
``native=False`` (the pure-numpy columnar reference) and ``native=None``
(auto-selected backend), asserting bit-identical results — and, for
context, through ``vectorize=False`` (the object runtime).

Output (``BENCH_native.json``): one row per protocol kernel, each
1000 nodes × 8 seeds × 1000 slots — Decay under a conservative
polynomial contention bound (30-step probability sweeps) and Ack under
a mid-size bound (real fallback/doubling traffic).  Every row carries a
``backend`` field naming what the auto-selected leg actually ran:
``"native"`` when the compiled kernel is built, ``"numpy"`` under the
fallback — ``scripts/bench_compare.py`` skips the speedup gate when
baseline and fresh record disagree on it, so a machine without a C
compiler records honestly instead of hard-failing.

Timings use ``time.process_time`` (single-core CPU seconds), best of
``rounds``, so a noisy CI neighbour cannot fake a regression or a win.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro import native
from repro.analysis.harness import format_table
from repro.core.ack_protocol import AckConfig
from repro.core.decay import DecayConfig
from repro.experiments import (
    DeploymentSpec,
    ExecutionPolicy,
    TrialPlan,
    deployment_artifacts,
    resolve_deployment,
    run_trials,
    seeded_plans,
)
from repro.simulation.rng import spawn_trial_seeds

N = 1000
SEEDS = 8
SLOTS = 1000
RADIUS = 175.0
DECAY_CONTENTION = 2**30  # conservative poly(N) bound: 30-step sweeps
ACK_CONTENTION = 4096.0  # mid-size bound: real doubling/fallback traffic
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "2"))
# Absolute bars are the PR acceptance criteria, asserted on full
# `make bench` runs; `make bench-record` sets REPRO_BENCH_STRICT=0 and
# leaves the *relative* gate to scripts/bench_compare.py.  Bit-identity
# is asserted unconditionally, whichever backend ran.
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"
MIN_SPEEDUP = 2.5  # native vs pure-numpy columnar, decay headline row
MIN_ROW_SPEEDUP = 2.0  # every row, with CI headroom
MIN_OBJECT_SPEEDUP = 8.0  # native vs object runtime, decay headline row
_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = _ROOT / "BENCH_native.json"


def make_plans(stack: str) -> list[TrialPlan]:
    config = (
        dict(decay_config=DecayConfig(contention_bound=DECAY_CONTENTION))
        if stack == "decay"
        else dict(ack_config=AckConfig(contention_bound=ACK_CONTENTION))
    )
    base = TrialPlan(
        deployment=DeploymentSpec.of(
            "uniform_disk", n=N, radius=RADIUS, seed=9
        ),
        stack=stack,
        workload="fixed_slots",
        options=TrialPlan.pack_options(slots=SLOTS),
        record_physical=False,
        label=f"native-{stack}",
        **config,
    )
    return seeded_plans(base, spawn_trial_seeds(SEEDS, seed=7))


def time_run(plans, rounds: int, policy: ExecutionPolicy):
    """Best-of-``rounds`` single-core timing of one executor leg."""
    best = None
    results = None
    for _ in range(rounds):
        start = time.process_time()
        results = run_trials(plans, policy)
        elapsed = time.process_time() - start
        best = elapsed if best is None else min(best, elapsed)
    return results, best


def run_comparison(rounds: int = ROUNDS) -> dict:
    backend = "native" if native.available() else "numpy"
    rows = []
    for stack in ("decay", "ack"):
        plans = make_plans(stack)
        # Warm the shared artifact cache: all three legs ride the same
        # per-deployment distances/gains/graphs.
        points = resolve_deployment(plans[0].deployment)
        deployment_artifacts(points, plans[0].params)

        auto, auto_time = time_run(
            plans, rounds, ExecutionPolicy(vectorize=True, native=None)
        )
        ref, ref_time = time_run(
            plans, rounds, ExecutionPolicy(vectorize=True, native=False)
        )
        obj, obj_time = time_run(
            plans, max(1, rounds - 1), ExecutionPolicy(vectorize=False)
        )
        rows.append(
            {
                "workload": f"native-{stack}",
                "backend": backend,
                "n": N,
                "seeds": SEEDS,
                "slots": SLOTS,
                "numpy_seconds": round(ref_time, 3),
                "native_seconds": round(auto_time, 3),
                "object_seconds": round(obj_time, 3),
                "speedup": round(ref_time / auto_time, 2),
                "speedup_vs_object": round(obj_time / auto_time, 2),
                "bit_identical": auto == ref == obj,
                "transmissions_per_trial": int(auto[0].transmissions),
                "receptions_per_trial": int(auto[0].receptions),
            }
        )
    return {
        "benchmark": "native-kernel",
        "config": {
            "n": N,
            "seeds": SEEDS,
            "slots": SLOTS,
            "radius": RADIUS,
            "decay_contention_bound": DECAY_CONTENTION,
            "ack_contention_bound": ACK_CONTENTION,
            "backend": backend,
            "timer": "process_time (single-core CPU s, best of rounds)",
            "rounds": rounds,
        },
        "rows": rows,
    }


@pytest.mark.benchmark(group="native-kernel")
def test_native_kernel_speedup(benchmark, emit):
    report = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    rows = report["rows"]
    backend = report["config"]["backend"]
    emit(
        "",
        "=== Native slot loop: 1000-node / 8-seed counters-only sweeps ===",
        format_table(
            ["kernel", "numpy (s)", "native (s)", "object (s)", "speedup",
             "vs object", "identical"],
            [
                [
                    r["workload"],
                    f"{r['numpy_seconds']:.2f}",
                    f"{r['native_seconds']:.2f}",
                    f"{r['object_seconds']:.2f}",
                    f"{r['speedup']:.2f}x",
                    f"{r['speedup_vs_object']:.2f}x",
                    r["bit_identical"],
                ]
                for r in rows
            ],
        ),
        f"backend: {backend}, recorded to {OUTPUT.name}",
    )

    # The defining contract, whichever backend ran: three executors,
    # one result.
    assert all(r["bit_identical"] for r in rows)
    if STRICT and backend == "native":
        # The acceptance bars: the fused loop must beat the pure-numpy
        # columnar path >= 2.5x on the decay headline row (>= 2x on
        # every row) and the object runtime >= 8x.
        assert rows[0]["speedup"] >= MIN_SPEEDUP, (
            f"native speedup regressed: {rows[0]['speedup']:.2f}x < "
            f"{MIN_SPEEDUP}x"
        )
        for r in rows:
            assert r["speedup"] >= MIN_ROW_SPEEDUP, (
                f"{r['workload']} native speedup regressed: "
                f"{r['speedup']:.2f}x < {MIN_ROW_SPEEDUP}x"
            )
        headline = rows[0]["speedup_vs_object"]
        assert headline >= MIN_OBJECT_SPEEDUP, (
            f"native vs object regressed: {headline:.2f}x < "
            f"{MIN_OBJECT_SPEEDUP}x"
        )
