"""Shared helpers for the benchmark suite.

Every benchmark regenerates one row/figure of the paper's evaluation
(see DESIGN.md §4) and prints a paper-style comparison table directly to
the terminal (bypassing pytest capture) so that
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
the measured-vs-predicted shapes alongside the timing numbers.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def emit(capsys):
    """Print straight to the terminal, bypassing pytest capture."""

    def _emit(*lines: str) -> None:
        with capsys.disabled():
            for line in lines:
                print(line)

    return _emit
