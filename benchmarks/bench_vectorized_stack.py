"""Columnar fast path: before/after on a 1000-node, 8-seed Decay sweep.

The PR-1 engine already batches the SINR physics of a sweep into one
tensor reduction, but every simulated slot still dispatches N Python
``on_slot`` calls per trial.  The columnar executor
(:mod:`repro.vectorized`) replaces that per-node layer with
struct-of-arrays kernel steps — this benchmark measures exactly that
substitution: the same plans run through ``run_trials`` with
``vectorize=False`` (the PR-1 object path) and ``vectorize=True`` (the
columnar path), asserting bit-identical results and recording the
single-core timings to ``BENCH_vectorized.json`` at the repo root, the
seed of the repo's perf trajectory.

Sweep shape: 1000 nodes on a sparse disk, every node broadcasting under
Decay with a conservative polynomial contention bound (Ñ = 2^30 — long
probability sweeps, the regime Theorem 8.1's Ω(Ñ·log(1/ε)) budget
punishes), observed for a fixed 1000-slot window.  Two rows:

* ``record_physical=False`` — the production-throughput configuration
  (counters + MAC events only), where the per-node dispatch dominates
  and the columnar path must win by >= 3x (the PR's acceptance bar);
* ``record_physical=True`` — full physical tracing, where both paths
  additionally pay identical per-event costs, reported for context.

Timings use ``time.process_time`` (single-core CPU seconds), best of
two rounds, so a noisy CI neighbour cannot fake a regression or a win.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.analysis.harness import format_table
from repro.core.decay import DecayConfig
from repro.experiments import (
    DeploymentSpec,
    TrialPlan,
    deployment_artifacts,
    resolve_deployment,
    run_trials,
    seeded_plans,
)
from repro.simulation.rng import spawn_trial_seeds

N = 1000
SEEDS = 8
SLOTS = 1000
RADIUS = 175.0
CONTENTION_BOUND = 2**30  # conservative poly(N) bound: 30-step sweeps
ROUNDS = 2
MIN_SPEEDUP = 3.0
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_vectorized.json"


def make_plans(record_physical: bool) -> list[TrialPlan]:
    base = TrialPlan(
        deployment=DeploymentSpec.of(
            "uniform_disk", n=N, radius=RADIUS, seed=9
        ),
        stack="decay",
        workload="fixed_slots",
        options=TrialPlan.pack_options(slots=SLOTS),
        decay_config=DecayConfig(contention_bound=CONTENTION_BOUND),
        record_physical=record_physical,
        label="vec-decay",
    )
    return seeded_plans(base, spawn_trial_seeds(SEEDS, seed=7))


def time_mode(plans, vectorize: bool, rounds: int):
    """Best-of-``rounds`` single-core timing of one executor."""
    best = None
    results = None
    for _ in range(rounds):
        start = time.process_time()
        results = run_trials(plans, vectorize=vectorize)
        elapsed = time.process_time() - start
        best = elapsed if best is None else min(best, elapsed)
    return results, best


def run_comparison(rounds: int = ROUNDS) -> dict:
    # Warm the shared artifact cache once: both executors ride the same
    # per-deployment distances/gains/graphs, so deriving them inside
    # either timed region would only add identical noise to both.
    plans = make_plans(record_physical=False)
    points = resolve_deployment(plans[0].deployment)
    deployment_artifacts(points, plans[0].params)

    rows = []
    for record_physical in (False, True):
        plans = make_plans(record_physical)
        vec, vec_time = time_mode(plans, vectorize=True, rounds=rounds)
        obj, obj_time = time_mode(plans, vectorize=False, rounds=rounds)
        rows.append(
            {
                "record_physical": record_physical,
                "object_seconds": round(obj_time, 3),
                "vector_seconds": round(vec_time, 3),
                "speedup": round(obj_time / vec_time, 2),
                "bit_identical": vec == obj,
                "transmissions_per_trial": int(vec[0].transmissions),
                "receptions_per_trial": int(vec[0].receptions),
            }
        )
    return {
        "benchmark": "vectorized-stack",
        "config": {
            "n": N,
            "seeds": SEEDS,
            "slots": SLOTS,
            "radius": RADIUS,
            "stack": "decay",
            "contention_bound": CONTENTION_BOUND,
            "timer": "process_time (single-core CPU s, best of rounds)",
            "rounds": rounds,
        },
        "rows": rows,
    }


@pytest.mark.benchmark(group="vectorized-stack")
def test_vectorized_decay_sweep_speedup(benchmark, emit):
    report = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    rows = report["rows"]
    emit(
        "",
        "=== Columnar fast path: 1000-node / 8-seed Decay sweep ===",
        format_table(
            ["tracing", "object (s)", "vector (s)", "speedup", "identical"],
            [
                [
                    "physical" if r["record_physical"] else "counters-only",
                    f"{r['object_seconds']:.2f}",
                    f"{r['vector_seconds']:.2f}",
                    f"{r['speedup']:.2f}x",
                    r["bit_identical"],
                ]
                for r in rows
            ],
        ),
        f"recorded to {OUTPUT.name}",
    )

    # The engine's defining contract, at scale.
    assert all(r["bit_identical"] for r in rows)
    # The acceptance bar: the counters-only sweep (per-node dispatch
    # dominant) must beat the PR-1 engine path by >= 3x on one core.
    headline = rows[0]["speedup"]
    assert headline >= MIN_SPEEDUP, (
        f"columnar speedup regressed: {headline:.2f}x < {MIN_SPEEDUP}x"
    )
    # Full tracing adds identical per-event cost to both paths; the
    # columnar win must still be substantial.
    assert rows[1]["speedup"] >= 1.5
