"""Columnar fast path: before/after on 1000-node, 8-seed sweeps.

The PR-1 engine already batches the SINR physics of a sweep into one
tensor reduction, but every simulated slot still dispatches N Python
``on_slot`` calls per trial.  The columnar executor
(:mod:`repro.vectorized`) replaces that per-node layer with
struct-of-arrays kernel steps — this benchmark measures exactly that
substitution: the same plans run through ``run_trials`` with
``vectorize=False`` (the PR-1 object path) and ``vectorize=True`` (the
columnar path), asserting bit-identical results and recording the
single-core timings to JSON files at the repo root, the perf
trajectory the CI ``bench-regression`` gate guards
(``scripts/bench_compare.py``).

Two sweeps, two output files:

* **MAC layer** (``BENCH_vectorized.json``): 1000 nodes on a sparse
  disk, every node broadcasting under Decay with a conservative
  polynomial contention bound (Ñ = 2^30 — long probability sweeps, the
  regime Theorem 8.1's Ω(Ñ·log(1/ε)) budget punishes), observed for a
  fixed 1000-slot window.  ``record_physical=False`` (the
  production-throughput configuration, where the per-node dispatch
  dominates) must win by >= 3x; full tracing is reported for context.

* **Protocol layer** (``BENCH_protocols.json``): the three absMAC
  protocols of the paper's Table 1 — BSMB across a 100-cluster line
  (D ≈ 99), BMMB (k = 2) and flood consensus on uniform disks — each a
  1000-node, 8-seed sweep over the columnar Decay MAC, run to
  completion on both executors.  Counters-only; the protocol fast path
  (:mod:`repro.vectorized.protocols`) must keep every row bit-identical
  and beat the object engine >= 2.5x in aggregate.

Timings use ``time.process_time`` (single-core CPU seconds), best of
``rounds``, so a noisy CI neighbour cannot fake a regression or a win.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis.harness import format_table
from repro.core.decay import DecayConfig
from repro.experiments import (
    DeploymentSpec,
    ExecutionPolicy,
    TrialPlan,
    deployment_artifacts,
    resolve_deployment,
    run_trials,
    seeded_plans,
)
from repro.simulation.rng import spawn_trial_seeds
from repro.sinr.params import SINRParameters

N = 1000
SEEDS = 8
SLOTS = 1000
RADIUS = 175.0
CONTENTION_BOUND = 2**30  # conservative poly(N) bound: 30-step sweeps
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "2"))
# The absolute speedup bars below are the PR acceptance criteria,
# asserted on full `make bench` runs.  `make bench-record` (the CI
# bench-regression job) sets REPRO_BENCH_STRICT=0 to relax them —
# there the gate is *relative*: scripts/bench_compare.py fails when
# the recorded speedup drops >20% below the committed baseline, and a
# hard absolute bar firing first would contradict that tolerance.
# Bit-identity is asserted unconditionally in both modes.
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"
MIN_SPEEDUP = 3.0
_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = _ROOT / "BENCH_vectorized.json"

# Protocol-layer sweep (BSMB / BMMB / consensus over the Decay MAC).
# The long probability sweeps keep per-slot transmitter counts low so
# the executors' dispatch layers — not the shared SINR physics — are
# what the comparison times; ack_factor compresses the otherwise
# Ñ-proportional acknowledgment budget back to a few hundred slots
# (DecayConfig exposes the leading constant exactly for this).
PROTOCOL_SEEDS = 8
SMB_CLUSTERS = 100  # 1000 nodes: a D≈99 line of 10-node clusters
SMB_PER_CLUSTER = 10
SMB_CLUSTER_RADIUS = 3.0
MMB_N = 1000
MMB_RADIUS = 80.0
MMB_TOKENS = 2
CONS_N = 1000
CONS_RADIUS = 110.0
CONS_WAVES = 2
LONG_SWEEP = DecayConfig(contention_bound=2**20, ack_factor=1.7e-5)
MID_SWEEP = DecayConfig(contention_bound=4096.0, ack_factor=0.0143)
MIN_PROTOCOL_SPEEDUP = 2.5  # aggregate over the three protocol rows
MIN_PROTOCOL_ROW_SPEEDUP = 1.8  # every single row, with CI headroom
PROTOCOL_OUTPUT = _ROOT / "BENCH_protocols.json"


def make_plans(record_physical: bool) -> list[TrialPlan]:
    base = TrialPlan(
        deployment=DeploymentSpec.of(
            "uniform_disk", n=N, radius=RADIUS, seed=9
        ),
        stack="decay",
        workload="fixed_slots",
        options=TrialPlan.pack_options(slots=SLOTS),
        decay_config=DecayConfig(contention_bound=CONTENTION_BOUND),
        record_physical=record_physical,
        label="vec-decay",
    )
    return seeded_plans(base, spawn_trial_seeds(SEEDS, seed=7))


def time_mode(plans, vectorize: bool, rounds: int):
    """Best-of-``rounds`` single-core timing of one executor."""
    best = None
    results = None
    for _ in range(rounds):
        start = time.process_time()
        results = run_trials(plans, ExecutionPolicy(vectorize=vectorize))
        elapsed = time.process_time() - start
        best = elapsed if best is None else min(best, elapsed)
    return results, best


def run_comparison(rounds: int = ROUNDS) -> dict:
    # Warm the shared artifact cache once: both executors ride the same
    # per-deployment distances/gains/graphs, so deriving them inside
    # either timed region would only add identical noise to both.
    plans = make_plans(record_physical=False)
    points = resolve_deployment(plans[0].deployment)
    deployment_artifacts(points, plans[0].params)

    rows = []
    for record_physical in (False, True):
        plans = make_plans(record_physical)
        vec, vec_time = time_mode(plans, vectorize=True, rounds=rounds)
        obj, obj_time = time_mode(plans, vectorize=False, rounds=rounds)
        rows.append(
            {
                "record_physical": record_physical,
                "object_seconds": round(obj_time, 3),
                "vector_seconds": round(vec_time, 3),
                "speedup": round(obj_time / vec_time, 2),
                "bit_identical": vec == obj,
                "transmissions_per_trial": int(vec[0].transmissions),
                "receptions_per_trial": int(vec[0].receptions),
            }
        )
    return {
        "benchmark": "vectorized-stack",
        "config": {
            "n": N,
            "seeds": SEEDS,
            "slots": SLOTS,
            "radius": RADIUS,
            "stack": "decay",
            "contention_bound": CONTENTION_BOUND,
            "timer": "process_time (single-core CPU s, best of rounds)",
            "rounds": rounds,
        },
        "rows": rows,
    }


@pytest.mark.benchmark(group="vectorized-stack")
def test_vectorized_decay_sweep_speedup(benchmark, emit):
    report = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    rows = report["rows"]
    emit(
        "",
        "=== Columnar fast path: 1000-node / 8-seed Decay sweep ===",
        format_table(
            ["tracing", "object (s)", "vector (s)", "speedup", "identical"],
            [
                [
                    "physical" if r["record_physical"] else "counters-only",
                    f"{r['object_seconds']:.2f}",
                    f"{r['vector_seconds']:.2f}",
                    f"{r['speedup']:.2f}x",
                    r["bit_identical"],
                ]
                for r in rows
            ],
        ),
        f"recorded to {OUTPUT.name}",
    )

    # The engine's defining contract, at scale.
    assert all(r["bit_identical"] for r in rows)
    if STRICT:
        # The acceptance bar: the counters-only sweep (per-node
        # dispatch dominant) must beat the PR-1 engine path by >= 3x
        # on one core.
        headline = rows[0]["speedup"]
        assert headline >= MIN_SPEEDUP, (
            f"columnar speedup regressed: {headline:.2f}x < {MIN_SPEEDUP}x"
        )
        # Full tracing adds identical per-event cost to both paths;
        # the columnar win must still be substantial.
        assert rows[1]["speedup"] >= 1.5


# -- the protocol-layer sweep (BSMB / BMMB / consensus) ---------------------


def protocol_plan_sets() -> list[tuple[str, list[TrialPlan]]]:
    """One seeded plan set per protocol, all columnar-eligible."""
    params = SINRParameters()
    spacing = params.approx_range * 0.8
    smb_deployment = DeploymentSpec.of(
        "cluster_deployment",
        n_clusters=SMB_CLUSTERS,
        nodes_per_cluster=SMB_PER_CLUSTER,
        cluster_radius=SMB_CLUSTER_RADIUS,
        cluster_spacing=spacing,
        min_separation=1.0,
        seed=5,
    )
    common = dict(
        stack="decay", record_physical=False, max_slots=200_000
    )
    bases = [
        (
            "smb",
            TrialPlan(
                deployment=smb_deployment,
                workload="smb",
                options=TrialPlan.pack_options(source=0),
                decay_config=LONG_SWEEP,
                label="vec-smb",
                **common,
            ),
        ),
        (
            "mmb",
            TrialPlan(
                deployment=DeploymentSpec.of(
                    "uniform_disk", n=MMB_N, radius=MMB_RADIUS, seed=9
                ),
                workload="mmb",
                options=TrialPlan.pack_options(
                    arrivals=(
                        (0, tuple(f"m{j}" for j in range(MMB_TOKENS))),
                    )
                ),
                decay_config=MID_SWEEP,
                label="vec-mmb",
                **common,
            ),
        ),
        (
            "consensus",
            TrialPlan(
                deployment=DeploymentSpec.of(
                    "uniform_disk", n=CONS_N, radius=CONS_RADIUS, seed=9
                ),
                workload="consensus",
                options=TrialPlan.pack_options(waves=CONS_WAVES),
                decay_config=LONG_SWEEP,
                label="vec-consensus",
                **common,
            ),
        ),
    ]
    return [
        (name, seeded_plans(base, spawn_trial_seeds(PROTOCOL_SEEDS, seed=7)))
        for name, base in bases
    ]


def run_protocol_comparison(rounds: int = 1) -> dict:
    plan_sets = protocol_plan_sets()
    # Warm the shared artifact cache (identical cost on both paths).
    for _name, plans in plan_sets:
        points = resolve_deployment(plans[0].deployment)
        deployment_artifacts(points, plans[0].params)

    rows = []
    for name, plans in plan_sets:
        vec, vec_time = time_mode(plans, vectorize=True, rounds=rounds)
        obj, obj_time = time_mode(plans, vectorize=False, rounds=rounds)
        completions = [r.completion for r in vec]
        rows.append(
            {
                "workload": name,
                "n": vec[0].n,
                "seeds": len(plans),
                "object_seconds": round(obj_time, 3),
                "vector_seconds": round(vec_time, 3),
                "speedup": round(obj_time / vec_time, 2),
                "bit_identical": vec == obj,
                "completion_min": int(min(completions)),
                "completion_max": int(max(completions)),
            }
        )
    total_obj = sum(r["object_seconds"] for r in rows)
    total_vec = sum(r["vector_seconds"] for r in rows)
    return {
        "benchmark": "vectorized-protocols",
        "config": {
            "seeds": PROTOCOL_SEEDS,
            "stack": "decay",
            "record_physical": False,
            "timer": "process_time (single-core CPU s, best of rounds)",
            "rounds": rounds,
        },
        "rows": rows,
        "aggregate_speedup": round(total_obj / max(total_vec, 1e-9), 2),
    }


@pytest.mark.benchmark(group="vectorized-protocols")
def test_vectorized_protocol_sweep_speedup(benchmark, emit):
    report = benchmark.pedantic(
        run_protocol_comparison,
        kwargs={"rounds": min(ROUNDS, 2)},
        rounds=1,
        iterations=1,
    )
    PROTOCOL_OUTPUT.write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )

    rows = report["rows"]
    emit(
        "",
        "=== Protocol fast path: 1000-node / 8-seed BSMB+BMMB+CONS ===",
        format_table(
            ["protocol", "object (s)", "vector (s)", "speedup", "identical"],
            [
                [
                    r["workload"],
                    f"{r['object_seconds']:.2f}",
                    f"{r['vector_seconds']:.2f}",
                    f"{r['speedup']:.2f}x",
                    r["bit_identical"],
                ]
                for r in rows
            ],
        ),
        f"aggregate speedup {report['aggregate_speedup']:.2f}x, "
        f"recorded to {PROTOCOL_OUTPUT.name}",
    )

    # Decode-for-decode identity of the protocol client kernels, at the
    # paper's headline scale.
    assert all(r["bit_identical"] for r in rows)
    if STRICT:
        # The PR-3 acceptance bar: counters-only protocol sweeps must
        # beat the object engine >= 2.5x in aggregate (and every row
        # must carry a clear per-protocol win of its own).
        aggregate = report["aggregate_speedup"]
        assert aggregate >= MIN_PROTOCOL_SPEEDUP, (
            f"protocol speedup regressed: {aggregate:.2f}x < "
            f"{MIN_PROTOCOL_SPEEDUP}x"
        )
        for r in rows:
            assert r["speedup"] >= MIN_PROTOCOL_ROW_SPEEDUP, (
                f"{r['workload']} speedup {r['speedup']:.2f}x < "
                f"{MIN_PROTOCOL_ROW_SPEEDUP}x"
            )
