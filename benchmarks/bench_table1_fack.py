"""Table 1, row f_ack (Theorem 5.1).

Paper claim: acknowledgments complete in
``O(Δ·log(Λ/ε_ack) + log Λ·log(Λ/ε_ack))`` — *linear* in the degree Δ
with a polylog additive term.

Experiment: fixed-radius random disks of growing population (so Δ grows
while Λ stays put); every node broadcasts under Algorithm B.1; measured
mean/max ack latency is compared against the predicted shape.  We check
that (a) latency grows with Δ, (b) growth is at most mildly super-linear
(the Θ-shape), and (c) the completeness of acknowledgments stays high.

Both sweeps run through the batched experiment engine
(:func:`repro.experiments.run_trials`): the ε-sweep reuses one cached
deployment across its four trials and resolves their slots in lockstep.
Every plan here is a homogeneous Ack population under the
local-broadcast workload, so the engine auto-selects the columnar fast
path (:mod:`repro.vectorized`) — ``test_table1_fack_rides_fast_path``
pins that selection, and the engine's equivalence suite guarantees the
numbers are bit-identical to the object runtime's.
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import fack_upper_bound
from repro.analysis.harness import correlation_with_shape, format_table
from repro.experiments import DeploymentSpec, TrialPlan, run_trials
from repro.vectorized import vector_eligible

POPULATIONS = (8, 16, 32)
RADIUS = 9.0
EPS_ACK = 0.1


def sweep_plans() -> list[TrialPlan]:
    """The Δ-sweep plans (shared by the sweep and the fast-path pin)."""
    return [
        TrialPlan(
            deployment=DeploymentSpec.of(
                "uniform_disk", n=n, radius=RADIUS, seed=100 + n
            ),
            stack="ack",
            workload="local_broadcast",
            seed=n,
            eps_ack=EPS_ACK,
            label=f"fack-n{n}",
        )
        for n in POPULATIONS
    ]


def run_sweep() -> list[dict]:
    plans = sweep_plans()
    rows = []
    for result in run_trials(plans):
        rows.append(
            {
                "n": result.n,
                "delta": result.degree,
                "lam": result.lam,
                "mean_latency": result.ack_mean_latency,
                "max_latency": result.ack_max_latency,
                "completeness": result.ack_completeness,
                "predicted": fack_upper_bound(
                    result.degree, result.lam, EPS_ACK
                ),
            }
        )
    return rows


@pytest.mark.benchmark(group="table1-fack")
def test_table1_fack(benchmark, emit):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    emit(
        "",
        "=== Table 1 / f_ack (Theorem 5.1): ack latency vs degree ===",
        format_table(
            ["n", "Δ", "Λ", "mean f_ack", "max f_ack", "complete", "Θ-shape"],
            [
                [
                    r["n"],
                    r["delta"],
                    f"{r['lam']:.1f}",
                    f"{r['mean_latency']:.0f}",
                    r["max_latency"],
                    f"{r['completeness']:.2f}",
                    f"{r['predicted']:.0f}",
                ]
                for r in rows
            ],
        ),
    )

    # Shape assertions: latency grows with Δ and tracks the bound.
    latencies = [r["mean_latency"] for r in rows]
    predicted = [r["predicted"] for r in rows]
    assert latencies == sorted(latencies), "f_ack must grow with Δ"
    shape = correlation_with_shape(latencies, predicted)
    emit(
        f"shape check: pearson={shape['pearson']:.3f} "
        f"ratio-spread={shape['ratio_spread']:.2f}"
    )
    assert shape["pearson"] > 0.8
    # Acknowledgments overwhelmingly complete (1 - eps_ack modulo noise).
    assert all(r["completeness"] >= 0.7 for r in rows)


def test_table1_fack_rides_fast_path():
    """Every f_ack plan is columnar-eligible: the engine's default
    auto-selection runs this whole benchmark on the vectorized path."""
    assert all(vector_eligible(plan) for plan in sweep_plans())


def run_eps_sweep() -> list[dict]:
    """The other axis of Theorem 5.1: f_ack ~ log(Λ/ε_ack).

    Four trials over one deployment — one cache entry, one lockstep
    batch.
    """
    deployment = DeploymentSpec.of(
        "uniform_disk", n=16, radius=RADIUS, seed=116
    )
    eps_values = (0.4, 0.1, 0.01, 0.001)
    plans = [
        TrialPlan(
            deployment=deployment,
            stack="ack",
            workload="local_broadcast",
            seed=11,
            eps_ack=eps,
            label=f"fack-eps{eps}",
        )
        for eps in eps_values
    ]
    rows = []
    for eps, result in zip(eps_values, run_trials(plans)):
        rows.append(
            {
                "eps": eps,
                "mean_latency": result.ack_mean_latency,
                "completeness": result.ack_completeness,
                "predicted": fack_upper_bound(result.degree, result.lam, eps),
            }
        )
    return rows


@pytest.mark.benchmark(group="table1-fack")
def test_table1_fack_eps_dependence(benchmark, emit):
    rows = benchmark.pedantic(run_eps_sweep, rounds=1, iterations=1)
    emit(
        "",
        "=== Table 1 / f_ack (Thm 5.1): log(Λ/ε) dependence ===",
        format_table(
            ["ε_ack", "mean f_ack", "complete", "Θ-shape"],
            [
                [
                    r["eps"],
                    f"{r['mean_latency']:.0f}",
                    f"{r['completeness']:.2f}",
                    f"{r['predicted']:.0f}",
                ]
                for r in rows
            ],
        ),
    )
    latencies = [r["mean_latency"] for r in rows]
    # Tighter guarantees cost more slots...
    assert latencies == sorted(latencies)
    # ...but only logarithmically: 400x tighter ε costs < ~8x the time
    # (a linear-in-1/ε law would cost 400x).
    assert latencies[-1] / latencies[0] < 8.0
    shape = correlation_with_shape(latencies, [r["predicted"] for r in rows])
    emit(
        f"shape check: pearson={shape['pearson']:.3f} "
        f"(logarithmic cost of tighter ε)"
    )
    assert shape["pearson"] > 0.8
