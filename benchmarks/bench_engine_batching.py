"""The experiment engine: batched sweep vs the legacy per-trial loop.

Every statistical claim in this reproduction (Table 1 rows, the decay /
approximate-progress ablations) averages dozens of seeded trials.  The
legacy harness ran them one at a time, re-deriving the deployment's
distance matrix, gain matrix, connectivity graphs and metrics for every
trial and re-evaluating log-derived protocol constants every slot.  The
engine (:mod:`repro.experiments`) memoizes those artifacts once per
deployment, fuses the per-slot SINR physics of all trials into one
ragged tensor reduction, and can ship plan chunks to a process pool
(``workers=N``) — the designed route to multi-fold sweep speedups on
multi-core hosts.

This benchmark runs one Table-1-style multi-trial sweep (f_ack local
broadcast, 8 seeds over one deployment) through the legacy per-trial
loop (artifact cache cleared between trials — exactly what the
pre-engine benchmarks paid), through the batched object engine, and
through the columnar fast path (``vectorize=True`` — array-state
kernels instead of per-node ``on_slot`` dispatch, see
:mod:`repro.vectorized` and ``bench_vectorized_stack.py`` for the
at-scale numbers), asserts all results are **bit-identical**, and
reports the wall-clock comparison.
When the host has more than one core it also times the process-pool
mode; on a single-core container the pool can only add overhead, so it
is reported but never asserted on.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.harness import format_table
from repro.experiments import (
    DeploymentSpec,
    ExecutionPolicy,
    GLOBAL_CACHE,
    TrialPlan,
    run_trials,
    seeded_plans,
)
from repro.experiments.engine import run_trial
from repro.simulation.rng import spawn_trial_seeds

N = 16
RADIUS = 9.0
TRIALS = 8


def make_plans() -> list[TrialPlan]:
    base = TrialPlan(
        deployment=DeploymentSpec.of(
            "uniform_disk", n=N, radius=RADIUS, seed=116
        ),
        stack="ack",
        workload="local_broadcast",
        eps_ack=0.1,
        label="engine-sweep",
    )
    return seeded_plans(base, spawn_trial_seeds(TRIALS, seed=7))


def run_legacy(plans) -> tuple[list, float]:
    """One trial at a time, nothing shared — the pre-engine cost model."""
    GLOBAL_CACHE.clear()
    start = time.perf_counter()
    results = []
    for plan in plans:
        GLOBAL_CACHE.clear()  # no cross-trial artifact reuse
        results.append(run_trial(plan))
    return results, time.perf_counter() - start


def run_batched(plans) -> tuple[list, float]:
    """The engine: shared artifacts + lockstep ragged-tensor physics
    (object executor — the columnar fast path explicitly opted out)."""
    GLOBAL_CACHE.clear()
    start = time.perf_counter()
    results = run_trials(
        plans, ExecutionPolicy(mode="batched", vectorize=False)
    )
    return results, time.perf_counter() - start


def run_vectorized(plans) -> tuple[list, float]:
    """The columnar fast path: array-state kernels over the lattice."""
    GLOBAL_CACHE.clear()
    start = time.perf_counter()
    results = run_trials(
        plans, ExecutionPolicy(mode="batched", vectorize=True)
    )
    return results, time.perf_counter() - start


def run_pooled(plans, workers: int) -> tuple[list, float]:
    """The engine's process-pool mode (contiguous plan chunks)."""
    GLOBAL_CACHE.clear()
    start = time.perf_counter()
    results = run_trials(
        plans, ExecutionPolicy(mode="batched", workers=workers)
    )
    return results, time.perf_counter() - start


@pytest.mark.benchmark(group="engine-batching")
def test_engine_batching_speedup(benchmark, emit):
    plans = make_plans()
    cores = os.cpu_count() or 1
    pool_workers = min(4, cores) if cores > 1 else 0

    def sweep_modes():
        legacy, legacy_time = run_legacy(plans)
        batched, batched_time = run_batched(plans)
        vectorized, vectorized_time = run_vectorized(plans)
        pooled = pooled_time = None
        if pool_workers:
            pooled, pooled_time = run_pooled(plans, pool_workers)
        return (
            legacy, legacy_time, batched, batched_time,
            vectorized, vectorized_time, pooled, pooled_time,
        )

    (
        legacy, legacy_time, batched, batched_time,
        vectorized, vectorized_time, pooled, pooled_time,
    ) = benchmark.pedantic(sweep_modes, rounds=1, iterations=1)

    rows = [
        [
            "legacy sequential",
            TRIALS,
            f"{legacy_time:.3f}",
            f"{1000 * legacy_time / TRIALS:.1f}",
        ],
        [
            "engine batched",
            TRIALS,
            f"{batched_time:.3f}",
            f"{1000 * batched_time / TRIALS:.1f}",
        ],
        [
            "engine vectorized",
            TRIALS,
            f"{vectorized_time:.3f}",
            f"{1000 * vectorized_time / TRIALS:.1f}",
        ],
    ]
    if pool_workers:
        rows.append(
            [
                f"engine pool x{pool_workers}",
                TRIALS,
                f"{pooled_time:.3f}",
                f"{1000 * pooled_time / TRIALS:.1f}",
            ]
        )
    speedup = legacy_time / batched_time
    mean = sum(r.ack_mean_latency for r in batched) / len(batched)
    emit(
        "",
        "=== Experiment engine: batched sweep vs legacy per-trial loop ===",
        format_table(["mode", "trials", "wall-clock (s)", "per-trial (ms)"], rows),
        f"host cores: {cores}; batched speedup {speedup:.2f}x "
        f"(n={N}, {TRIALS} seeds, mean f_ack {mean:.0f} slots)",
    )
    if pool_workers:
        emit(f"pool speedup {legacy_time / pooled_time:.2f}x on {pool_workers} workers")
    else:
        emit(
            "single-core host: pool mode skipped (workers only pay off "
            "with >1 core; determinism is covered by the engine tests)"
        )

    # The engine's defining contract: same seeds => bit-identical
    # per-trial metrics, whatever the execution mode.
    assert batched == legacy, "batched results diverged from sequential"
    assert vectorized == legacy, "vectorized results diverged from sequential"
    if pooled is not None:
        assert pooled == legacy, "pooled results diverged from sequential"
    # Wall-clock regression guard (loose: CI boxes are noisy; the
    # interesting numbers are the emitted ones above).
    assert speedup > 0.7, f"batching regressed badly: {speedup:.2f}x"
