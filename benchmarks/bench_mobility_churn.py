"""Robustness of the absMAC guarantees under mobility and churn.

The paper's analysis (HalldorssonHL15) fixes the node deployment for
the lifetime of a run.  This benchmark stress-tests the reproduced
stack along the dynamic-topology axis (:mod:`repro.topology`):
random-waypoint mobility re-derives the geometry at epoch boundaries,
and scheduled churn freezes crashed nodes out of the SINR denominator
and the protocol populations — on every executor, dataclass-equal.

Three sweeps, one output file (``BENCH_mobility.json``):

* **f_ack** — Algorithm B.1 local broadcast (full physical tracing)
  across the topology grid: acknowledgment latency and completeness vs
  node speed and churn rate.  The Table-1 f_ack guarantee is a
  *fixed-geometry* claim; the recorded degradation curve (completeness
  is measured against the initial G_{1-ε}, so neighbors that moved away
  or were down during a broadcast count as misses) is the empirical
  robustness margin.
* **SMB / MMB / consensus** — the three protocol workloads over the
  Decay MAC (counters-only, riding the columnar protocol kernels):
  completion latency vs speed and churn rate.  Churn schedules spare
  the broadcast source and recover every crash, so completion stays
  well-defined; what varies is how long dissemination takes while
  relays move and blink.
* **speedup** — a counters-only columnar-vs-object comparison with
  mobility *and* churn active: dynamic-topology trials must stay
  bit-identical across executors and keep a clear fast-path win (the
  per-epoch geometry restack is shared work, paid identically by both).
  This row feeds the CI ``bench-regression`` gate
  (``scripts/bench_compare.py``).

Timings use ``time.process_time`` (single-core CPU seconds, best of
``rounds``).  ``REPRO_BENCH_STRICT=0`` relaxes the absolute bars
(bench-record mode); bit-identity is asserted unconditionally.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro.analysis.harness import format_table
from repro.core.decay import DecayConfig
from repro.experiments import (
    DeploymentSpec,
    ExecutionPolicy,
    TrialPlan,
    deployment_artifacts,
    resolve_deployment,
    run_trials,
    seeded_plans,
)
from repro.simulation.rng import spawn_trial_seeds
from repro.topology import (
    CompositeTopology,
    TopologyProvider,
    WaypointMobility,
    random_churn_schedule,
)

# -- the topology grid -------------------------------------------------------

EPOCH_SLOTS = 32
SPEEDS = (0.5, 2.0)  # distance units (d_min multiples) per epoch
CHURN_RATES = (1e-4, 4e-4)  # per-node per-slot crash probability
CHURN_HORIZON = 2_000
# Long outages for the f_ack sweep: a crashed node misses *whole*
# broadcasts (the Ack budget at these deployments is ~2.4k slots), so
# churn shows up in completeness, not just latency.  The MACs are
# budget-driven, so termination is unconditional.
ACK_DOWNTIME = 2_500
# Short outages for the protocol sweep: BSMB/BMMB relay each message
# *once*, so a node down for longer than the dissemination wave misses
# it permanently and the workload (rightly) never completes — a real
# relay-once-vs-outage deadlock this benchmark records as latency
# inflation instead, by keeping outages shorter than the traffic.
PROTOCOL_DOWNTIME = 120
# The f_ack mobility box is 3x the deployment radius: waypoints can
# take a node genuinely out of its initial neighbors' range, which is
# what degrades completeness (motion confined to the deployment's own
# bounding box never does — nodes stay mutually decodable).
ACK_BOX_SCALE = 3.0

# -- f_ack sweep (Algorithm B.1, full tracing) -------------------------------

ACK_N = 24
ACK_RADIUS = 12.0
ACK_SEEDS = 4

# -- protocol sweep (Decay MAC, counters-only) -------------------------------

PROTOCOL_SEEDS = 3
SMB_N = 24
SMB_RADIUS = 10.0
MMB_N = 30
MMB_RADIUS = 12.0
MMB_TOKENS = 2
CONS_N = 30
CONS_RADIUS = 14.0
CONS_WAVES = 6
MAX_SLOTS = 300_000

# -- the speedup row (CI regression gate) ------------------------------------

SPEEDUP_N = 400
SPEEDUP_SEEDS = 4
SPEEDUP_SLOTS = 400
SPEEDUP_RADIUS = 110.0
SPEEDUP_CONTENTION = 2**30
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "2"))
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"
MIN_SPEEDUP = 1.8

_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = _ROOT / "BENCH_mobility.json"


def topology_grid(
    n: int,
    downtime: int,
    spare: tuple[int, ...] = (),
    bounds: tuple[float, float, float, float] | None = None,
) -> list[tuple[str, TopologyProvider | None]]:
    """The topology grid: static, each axis alone, and the full storm.

    Churn schedules spare the given nodes (broadcast sources) and
    recover every crash after ``downtime`` slots, so every workload on
    the grid terminates (see the downtime constants above for why the
    two sweeps stress different outage lengths).  ``bounds`` optionally
    widens the waypoint box beyond the deployment (the f_ack sweep's
    out-of-range-wandering axis).
    """

    def mobility(speed: float) -> WaypointMobility:
        return WaypointMobility(
            epoch_slots=EPOCH_SLOTS, speed=speed, seed=101, bounds=bounds
        )

    def churn(rate: float):
        return random_churn_schedule(
            n, rate, CHURN_HORIZON, downtime, seed=13, spare=spare
        )

    grid: list[tuple[str, TopologyProvider | None]] = [("static", None)]
    for speed in SPEEDS:
        grid.append((f"speed-{speed:g}", mobility(speed)))
    for rate in CHURN_RATES:
        grid.append((f"churn-{rate:g}", churn(rate)))
    grid.append(
        (
            "storm",
            CompositeTopology(
                parts=(mobility(max(SPEEDS)), churn(max(CHURN_RATES)))
            ),
        )
    )
    return grid


def run_fack_sweep() -> list[dict]:
    """Algorithm B.1 local broadcast across the topology grid."""
    deployment = DeploymentSpec.of(
        "uniform_disk", n=ACK_N, radius=ACK_RADIUS, seed=21
    )
    box = ACK_BOX_SCALE * ACK_RADIUS
    rows = []
    for name, topology in topology_grid(
        ACK_N, ACK_DOWNTIME, bounds=(-box, -box, box, box)
    ):
        base = TrialPlan(
            deployment=deployment,
            stack="ack",
            workload="local_broadcast",
            topology=topology,
            max_slots=MAX_SLOTS,
            label=f"topo-fack-{name}",
        )
        results = run_trials(
            seeded_plans(base, spawn_trial_seeds(ACK_SEEDS, seed=11))
        )
        latencies = [x for r in results for x in r.ack_latencies]
        rows.append(
            {
                "topology": name,
                "seeds": ACK_SEEDS,
                "broadcasts": sum(r.broadcasts for r in results),
                "ack_mean_latency": (
                    round(statistics.mean(latencies), 2) if latencies else None
                ),
                "ack_max_latency": max(latencies) if latencies else None,
                "ack_completeness": round(
                    statistics.mean(r.ack_completeness for r in results), 4
                ),
            }
        )
    return rows


def protocol_plan(
    workload: str, name: str, topology: TopologyProvider | None
) -> TrialPlan:
    common = dict(
        stack="decay",
        record_physical=False,
        max_slots=MAX_SLOTS,
        topology=topology,
    )
    if workload == "smb":
        return TrialPlan(
            deployment=DeploymentSpec.of(
                "uniform_disk", n=SMB_N, radius=SMB_RADIUS, seed=5
            ),
            workload="smb",
            options=TrialPlan.pack_options(source=0),
            label=f"topo-smb-{name}",
            **common,
        )
    if workload == "mmb":
        return TrialPlan(
            deployment=DeploymentSpec.of(
                "uniform_disk", n=MMB_N, radius=MMB_RADIUS, seed=9
            ),
            workload="mmb",
            options=TrialPlan.pack_options(
                arrivals=((0, tuple(f"m{j}" for j in range(MMB_TOKENS))),)
            ),
            label=f"topo-mmb-{name}",
            **common,
        )
    return TrialPlan(
        deployment=DeploymentSpec.of(
            "uniform_disk", n=CONS_N, radius=CONS_RADIUS, seed=9
        ),
        workload="consensus",
        options=TrialPlan.pack_options(waves=CONS_WAVES),
        label=f"topo-consensus-{name}",
        **common,
    )


def run_protocol_sweep() -> list[dict]:
    """SMB/MMB/consensus completion latencies across the topology grid."""
    sizes = {"smb": SMB_N, "mmb": MMB_N, "consensus": CONS_N}
    rows = []
    for workload in ("smb", "mmb", "consensus"):
        # Sources / first arrivals live at node 0: spare it from churn
        # so completion stays well-defined under every schedule.
        for name, topology in topology_grid(
            sizes[workload], PROTOCOL_DOWNTIME, spare=(0,)
        ):
            base = protocol_plan(workload, name, topology)
            results = run_trials(
                seeded_plans(base, spawn_trial_seeds(PROTOCOL_SEEDS, seed=17))
            )
            completions = [r.completion for r in results]
            row = {
                "workload": workload,
                "topology": name,
                "n": results[0].n,
                "seeds": PROTOCOL_SEEDS,
                "completion_mean": round(statistics.mean(completions), 1),
                "completion_max": max(completions),
            }
            if workload == "consensus":
                row["agreed"] = all(
                    r.extra_value("agreed") for r in results
                )
            rows.append(row)
    return rows


def speedup_plans() -> list[TrialPlan]:
    topology = CompositeTopology(
        parts=(
            WaypointMobility(
                epoch_slots=EPOCH_SLOTS, speed=max(SPEEDS), seed=101
            ),
            random_churn_schedule(
                SPEEDUP_N,
                max(CHURN_RATES),
                SPEEDUP_SLOTS,
                PROTOCOL_DOWNTIME,
                seed=13,
            ),
        )
    )
    base = TrialPlan(
        deployment=DeploymentSpec.of(
            "uniform_disk", n=SPEEDUP_N, radius=SPEEDUP_RADIUS, seed=9
        ),
        stack="decay",
        workload="fixed_slots",
        options=TrialPlan.pack_options(slots=SPEEDUP_SLOTS),
        decay_config=DecayConfig(contention_bound=SPEEDUP_CONTENTION),
        topology=topology,
        record_physical=False,
        label="topo-speedup",
    )
    return seeded_plans(base, spawn_trial_seeds(SPEEDUP_SEEDS, seed=7))


def run_speedup(rounds: int = ROUNDS) -> dict:
    """Columnar vs object executor with mobility + churn active."""
    plans = speedup_plans()
    points = resolve_deployment(plans[0].deployment)
    deployment_artifacts(points, plans[0].params)  # warm the shared cache

    def time_mode(vectorize: bool):
        best, results = None, None
        for _ in range(rounds):
            start = time.process_time()
            results = run_trials(
                plans, ExecutionPolicy(vectorize=vectorize)
            )
            elapsed = time.process_time() - start
            best = elapsed if best is None else min(best, elapsed)
        return results, best

    vec, vec_time = time_mode(True)
    obj, obj_time = time_mode(False)
    return {
        "workload": "mobility-decay",
        "n": SPEEDUP_N,
        "seeds": SPEEDUP_SEEDS,
        "slots": SPEEDUP_SLOTS,
        "record_physical": False,
        "object_seconds": round(obj_time, 3),
        "vector_seconds": round(vec_time, 3),
        "speedup": round(obj_time / vec_time, 2),
        "bit_identical": vec == obj,
    }


def run_benchmark(rounds: int = ROUNDS) -> dict:
    return {
        "benchmark": "mobility-churn",
        "config": {
            "epoch_slots": EPOCH_SLOTS,
            "speeds": list(SPEEDS),
            "churn_rates": list(CHURN_RATES),
            "churn": {
                "horizon": CHURN_HORIZON,
                "ack_downtime": ACK_DOWNTIME,
                "protocol_downtime": PROTOCOL_DOWNTIME,
            },
            "ack": {
                "n": ACK_N,
                "radius": ACK_RADIUS,
                "seeds": ACK_SEEDS,
                "box_scale": ACK_BOX_SCALE,
            },
            "protocols": {
                "seeds": PROTOCOL_SEEDS,
                "smb": {"n": SMB_N, "radius": SMB_RADIUS},
                "mmb": {"n": MMB_N, "tokens": MMB_TOKENS},
                "consensus": {"n": CONS_N, "waves": CONS_WAVES},
            },
            "speedup": {
                "n": SPEEDUP_N,
                "seeds": SPEEDUP_SEEDS,
                "slots": SPEEDUP_SLOTS,
                "timer": "process_time (single-core CPU s, best of rounds)",
                "rounds": rounds,
            },
        },
        "fack_rows": run_fack_sweep(),
        "protocol_rows": run_protocol_sweep(),
        "rows": [run_speedup(rounds)],
    }


@pytest.mark.benchmark(group="mobility-churn")
def test_mobility_churn(benchmark, emit):
    report = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    fack = report["fack_rows"]
    emit(
        "",
        "=== Dynamic topology: Algorithm B.1 local broadcast ===",
        format_table(
            ["topology", "f_ack mean", "f_ack max", "completeness"],
            [
                [
                    r["topology"],
                    r["ack_mean_latency"],
                    r["ack_max_latency"],
                    f"{r['ack_completeness']:.3f}",
                ]
                for r in fack
            ],
        ),
    )
    emit(
        "",
        "=== Dynamic topology: protocol completion (Decay MAC) ===",
        format_table(
            ["workload", "topology", "completion mean", "completion max"],
            [
                [
                    r["workload"],
                    r["topology"],
                    r["completion_mean"],
                    r["completion_max"],
                ]
                for r in report["protocol_rows"]
            ],
        ),
    )
    speed = report["rows"][0]
    emit(
        "",
        f"columnar speedup under mobility+churn: {speed['speedup']:.2f}x "
        f"(object {speed['object_seconds']:.2f}s, vector "
        f"{speed['vector_seconds']:.2f}s, bit_identical="
        f"{speed['bit_identical']}), recorded to {OUTPUT.name}",
    )

    # The dynamic fast path's defining contract, unconditionally.
    assert speed["bit_identical"]
    # Structural sanity across the whole grid.
    assert all(r["broadcasts"] > 0 for r in fack)
    assert all(r["completion_max"] > 0 for r in report["protocol_rows"])
    baseline = fack[0]
    assert baseline["topology"] == "static"
    if STRICT:
        # Frozen geometry keeps the paper's guarantee outright.
        assert baseline["ack_completeness"] == 1.0
        # The dynamic axes genuinely stress the stack: the storm must
        # lose completeness against the fixed-geometry baseline
        # (measured against the initial G_{1-ε} — exactly the claim the
        # paper cannot make once nodes move or crash).
        storm = next(r for r in fack if r["topology"] == "storm")
        assert storm["ack_completeness"] < baseline["ack_completeness"]
        # Churn visibly delays protocol completion.
        for workload in ("smb", "mmb", "consensus"):
            rows = {
                r["topology"]: r
                for r in report["protocol_rows"]
                if r["workload"] == workload
            }
            worst_churn = f"churn-{max(CHURN_RATES):g}"
            assert (
                rows[worst_churn]["completion_max"]
                >= rows["static"]["completion_max"]
            )
        # And the columnar path must keep a clear win with topology on.
        assert speed["speedup"] >= MIN_SPEEDUP, (
            f"dynamic-topology speedup regressed: "
            f"{speed['speedup']:.2f}x < {MIN_SPEEDUP}x"
        )
