"""Robustness of the absMAC guarantees under stochastic channels.

The paper's analysis (HalldorssonHL15) assumes a deterministic SINR
channel with uniform transmit power.  This benchmark stress-tests the
reproduced stack along the first scenario axis the paper cannot answer
analytically: per-link Rayleigh fading, log-normal shadowing and
heterogeneous transmit powers (:class:`~repro.sinr.params.ChannelModel`),
drawn per trial from dedicated channel RNG streams so every row is
reproducible from its plan seeds alone.

Three sweeps, one output file (``BENCH_fading.json``):

* **f_ack / f_approg** — Algorithm B.1 local broadcast (full physical
  tracing) across the channel-model grid: acknowledgment latencies,
  completeness and approximate-progress latencies vs. shadowing σ and
  power spread.  The Table-1 guarantees are *per-deterministic-channel*
  claims; the recorded degradation curve is the empirical robustness
  margin.
* **SMB / MMB / consensus** — the three protocol workloads over the
  Decay MAC (counters-only, riding the columnar protocol kernels) with
  completion latencies per channel model.
* **speedup** — a counters-only columnar-vs-object comparison with the
  full stochastic model enabled: fading trials must stay bit-identical
  across executors *and* keep a clear fast-path win.  This row feeds
  the CI ``bench-regression`` gate (``scripts/bench_compare.py``), so a
  regression in the stochastic hot path fails the build like any other
  fast-path regression.

Timings use ``time.process_time`` (single-core CPU seconds, best of
``rounds``).  ``REPRO_BENCH_STRICT=0`` relaxes the absolute bars
(bench-record mode); bit-identity is asserted unconditionally.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro.analysis.harness import format_table
from repro.core.decay import DecayConfig
from repro.experiments import (
    DeploymentSpec,
    ExecutionPolicy,
    TrialPlan,
    deployment_artifacts,
    resolve_deployment,
    run_trials,
    seeded_plans,
)
from repro.simulation.rng import spawn_trial_seeds
from repro.sinr.params import ChannelModel, SINRParameters

# -- the channel-model grid --------------------------------------------------

SHADOWING_DBS = (2.0, 6.0)
POWER_SPREADS = (4.0, 16.0)

# -- f_ack / f_approg sweep (Algorithm B.1, full tracing) --------------------

ACK_N = 24
ACK_RADIUS = 12.0
ACK_SEEDS = 4

# -- protocol sweep (Decay MAC, counters-only) -------------------------------

PROTOCOL_SEEDS = 3
SMB_CLUSTERS = 6
SMB_PER_CLUSTER = 4
SMB_CLUSTER_RADIUS = 3.0
MMB_N = 30
MMB_RADIUS = 12.0
MMB_TOKENS = 2
CONS_N = 30
CONS_RADIUS = 14.0
CONS_WAVES = 6  # 2·D + 2 at the deployment's D = 2 strong-graph hops
MAX_SLOTS = 300_000

# -- the speedup row (CI regression gate) ------------------------------------

SPEEDUP_N = 400
SPEEDUP_SEEDS = 4
SPEEDUP_SLOTS = 400
SPEEDUP_RADIUS = 110.0
SPEEDUP_CONTENTION = 2**30
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "2"))
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"
MIN_SPEEDUP = 1.8

_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = _ROOT / "BENCH_fading.json"


def channel_models() -> list[tuple[str, ChannelModel | None]]:
    """The model grid: baseline, each axis alone, and the full storm."""
    grid: list[tuple[str, ChannelModel | None]] = [("deterministic", None)]
    for db in SHADOWING_DBS:
        grid.append((f"shadow-{db:g}dB", ChannelModel(shadowing_sigma_db=db)))
    for spread in POWER_SPREADS:
        grid.append((f"power-{spread:g}x", ChannelModel(power_spread=spread)))
    grid.append(("rayleigh", ChannelModel(rayleigh=True)))
    grid.append(
        (
            "combined",
            ChannelModel(
                rayleigh=True,
                shadowing_sigma_db=max(SHADOWING_DBS),
                power_spread=max(POWER_SPREADS),
            ),
        )
    )
    return grid


def _params(model: ChannelModel | None) -> SINRParameters:
    return SINRParameters(channel_model=model)


def run_fack_sweep() -> list[dict]:
    """Algorithm B.1 local broadcast across the model grid."""
    deployment = DeploymentSpec.of(
        "uniform_disk", n=ACK_N, radius=ACK_RADIUS, seed=21
    )
    rows = []
    for name, model in channel_models():
        base = TrialPlan(
            deployment=deployment,
            stack="ack",
            workload="local_broadcast",
            params=_params(model),
            max_slots=MAX_SLOTS,
            label=f"fade-fack-{name}",
        )
        results = run_trials(
            seeded_plans(base, spawn_trial_seeds(ACK_SEEDS, seed=11))
        )
        latencies = [x for r in results for x in r.ack_latencies]
        approg = [x for r in results for x in r.approg_latencies]
        rows.append(
            {
                "model": name,
                "seeds": ACK_SEEDS,
                "broadcasts": sum(r.broadcasts for r in results),
                "ack_mean_latency": (
                    round(statistics.mean(latencies), 2) if latencies else None
                ),
                "ack_max_latency": max(latencies) if latencies else None,
                "ack_completeness": round(
                    statistics.mean(r.ack_completeness for r in results), 4
                ),
                "approg_median_latency": (
                    statistics.median(approg) if approg else None
                ),
                "approg_episodes": sum(r.approg_episodes for r in results),
            }
        )
    return rows


def protocol_plan(workload: str, model: ChannelModel | None) -> TrialPlan:
    params = _params(model)
    common = dict(
        stack="decay",
        record_physical=False,
        max_slots=MAX_SLOTS,
        params=params,
    )
    if workload == "smb":
        spacing = SINRParameters().approx_range * 0.8
        return TrialPlan(
            deployment=DeploymentSpec.of(
                "cluster_deployment",
                n_clusters=SMB_CLUSTERS,
                nodes_per_cluster=SMB_PER_CLUSTER,
                cluster_radius=SMB_CLUSTER_RADIUS,
                cluster_spacing=spacing,
                min_separation=1.0,
                seed=5,
            ),
            workload="smb",
            options=TrialPlan.pack_options(source=0),
            label="fade-smb",
            **common,
        )
    if workload == "mmb":
        return TrialPlan(
            deployment=DeploymentSpec.of(
                "uniform_disk", n=MMB_N, radius=MMB_RADIUS, seed=9
            ),
            workload="mmb",
            options=TrialPlan.pack_options(
                arrivals=((0, tuple(f"m{j}" for j in range(MMB_TOKENS))),)
            ),
            label="fade-mmb",
            **common,
        )
    return TrialPlan(
        deployment=DeploymentSpec.of(
            "uniform_disk", n=CONS_N, radius=CONS_RADIUS, seed=9
        ),
        workload="consensus",
        options=TrialPlan.pack_options(waves=CONS_WAVES),
        label="fade-consensus",
        **common,
    )


def run_protocol_sweep() -> list[dict]:
    """SMB/MMB/consensus completion latencies across the model grid."""
    rows = []
    for workload in ("smb", "mmb", "consensus"):
        for name, model in channel_models():
            base = protocol_plan(workload, model)
            results = run_trials(
                seeded_plans(base, spawn_trial_seeds(PROTOCOL_SEEDS, seed=17))
            )
            completions = [r.completion for r in results]
            row = {
                "workload": workload,
                "model": name,
                "n": results[0].n,
                "seeds": PROTOCOL_SEEDS,
                "completion_mean": round(statistics.mean(completions), 1),
                "completion_max": max(completions),
            }
            if workload == "consensus":
                row["agreed"] = all(
                    r.extra_value("agreed") for r in results
                )
            rows.append(row)
    return rows


def speedup_plans() -> list[TrialPlan]:
    base = TrialPlan(
        deployment=DeploymentSpec.of(
            "uniform_disk", n=SPEEDUP_N, radius=SPEEDUP_RADIUS, seed=9
        ),
        stack="decay",
        workload="fixed_slots",
        options=TrialPlan.pack_options(slots=SPEEDUP_SLOTS),
        decay_config=DecayConfig(contention_bound=SPEEDUP_CONTENTION),
        params=_params(
            ChannelModel(
                rayleigh=True, shadowing_sigma_db=6.0, power_spread=4.0
            )
        ),
        record_physical=False,
        label="fade-speedup",
    )
    return seeded_plans(base, spawn_trial_seeds(SPEEDUP_SEEDS, seed=7))


def run_speedup(rounds: int = ROUNDS) -> dict:
    """Columnar vs object executor with the full stochastic model on."""
    plans = speedup_plans()
    points = resolve_deployment(plans[0].deployment)
    deployment_artifacts(points, plans[0].params)  # warm the shared cache

    def time_mode(vectorize: bool):
        best, results = None, None
        for _ in range(rounds):
            start = time.process_time()
            results = run_trials(
                plans, ExecutionPolicy(vectorize=vectorize)
            )
            elapsed = time.process_time() - start
            best = elapsed if best is None else min(best, elapsed)
        return results, best

    vec, vec_time = time_mode(True)
    obj, obj_time = time_mode(False)
    return {
        "workload": "fading-decay",
        "n": SPEEDUP_N,
        "seeds": SPEEDUP_SEEDS,
        "slots": SPEEDUP_SLOTS,
        "record_physical": False,
        "object_seconds": round(obj_time, 3),
        "vector_seconds": round(vec_time, 3),
        "speedup": round(obj_time / vec_time, 2),
        "bit_identical": vec == obj,
    }


def run_benchmark(rounds: int = ROUNDS) -> dict:
    return {
        "benchmark": "fading-robustness",
        "config": {
            "shadowing_dbs": list(SHADOWING_DBS),
            "power_spreads": list(POWER_SPREADS),
            "ack": {"n": ACK_N, "radius": ACK_RADIUS, "seeds": ACK_SEEDS},
            "protocols": {
                "seeds": PROTOCOL_SEEDS,
                "smb": f"{SMB_CLUSTERS}x{SMB_PER_CLUSTER} clusters",
                "mmb": {"n": MMB_N, "tokens": MMB_TOKENS},
                "consensus": {"n": CONS_N, "waves": CONS_WAVES},
            },
            "speedup": {
                "n": SPEEDUP_N,
                "seeds": SPEEDUP_SEEDS,
                "slots": SPEEDUP_SLOTS,
                "timer": "process_time (single-core CPU s, best of rounds)",
                "rounds": rounds,
            },
        },
        "fack_rows": run_fack_sweep(),
        "protocol_rows": run_protocol_sweep(),
        "rows": [run_speedup(rounds)],
    }


@pytest.mark.benchmark(group="fading-robustness")
def test_fading_robustness(benchmark, emit):
    report = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    fack = report["fack_rows"]
    emit(
        "",
        "=== Stochastic channels: Algorithm B.1 local broadcast ===",
        format_table(
            ["model", "f_ack mean", "f_ack max", "completeness", "f_approg med"],
            [
                [
                    r["model"],
                    r["ack_mean_latency"],
                    r["ack_max_latency"],
                    f"{r['ack_completeness']:.3f}",
                    r["approg_median_latency"],
                ]
                for r in fack
            ],
        ),
    )
    emit(
        "",
        "=== Stochastic channels: protocol completion (Decay MAC) ===",
        format_table(
            ["workload", "model", "completion mean", "completion max"],
            [
                [
                    r["workload"],
                    r["model"],
                    r["completion_mean"],
                    r["completion_max"],
                ]
                for r in report["protocol_rows"]
            ],
        ),
    )
    speed = report["rows"][0]
    emit(
        "",
        f"columnar speedup under the full model: {speed['speedup']:.2f}x "
        f"(object {speed['object_seconds']:.2f}s, vector "
        f"{speed['vector_seconds']:.2f}s, bit_identical="
        f"{speed['bit_identical']}), recorded to {OUTPUT.name}",
    )

    # The stochastic fast path's defining contract, unconditionally.
    assert speed["bit_identical"]
    # Structural sanity across the whole grid: every configuration ran
    # and measured something.
    assert all(r["broadcasts"] > 0 for r in fack)
    assert all(r["completion_max"] > 0 for r in report["protocol_rows"])
    baseline = fack[0]
    assert baseline["model"] == "deterministic"
    if STRICT:
        # On the deterministic baseline the paper's guarantees hold
        # outright: every broadcast acknowledged, consensus agrees.
        assert baseline["ack_completeness"] == 1.0
        # Consensus must agree on the deterministic channel; whether it
        # survives each stochastic model is a *finding* the JSON
        # records (agreement under fading is exactly what the paper
        # cannot promise), not a precondition.
        assert all(
            r["agreed"]
            for r in report["protocol_rows"]
            if r["workload"] == "consensus" and r["model"] == "deterministic"
        )
        # The stochastic axes genuinely stress the stack: the combined
        # storm must cost more acknowledgment latency than baseline
        # (an all-acks-lost storm, mean None, is the extreme of the
        # same claim).
        combined = next(r for r in fack if r["model"] == "combined")
        assert (
            combined["ack_mean_latency"] is None
            or combined["ack_mean_latency"] > baseline["ack_mean_latency"]
        )
        # And the columnar path must keep a clear win with fading on.
        assert speed["speedup"] >= MIN_SPEEDUP, (
            f"stochastic-path speedup regressed: "
            f"{speed['speedup']:.2f}x < {MIN_SPEEDUP}x"
        )
