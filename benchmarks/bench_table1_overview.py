"""Table 1, the table itself: regenerate the bounds summary.

The other Table 1 benchmarks measure individual rows empirically; this
one regenerates the *table artifact* — every task's lower/upper bound
pair evaluated under the caption's comparison recipe (Λ = n, ε = 1/n) —
and asserts the relationships the paper highlights in §2:

* f_ack's upper bound is within polylog factors of its trivial Δ lower
  bound (Remark 5.3: "close to optimal");
* f_prog's best upper bound is no better than f_ack's (Theorem 6.1:
  progress cannot be efficiently implemented);
* f_approg undercuts the f_prog floor for high-degree networks
  (Remark 11.2: the point of the new definition).
"""

from __future__ import annotations

import pytest

from repro.analysis.table1 import render_table1, table1_rows


def build_tables() -> dict:
    moderate = table1_rows(
        n=1024, delta=32, diameter=16, diameter_tilde=20, k=4
    )
    # High-degree regime: Λ is a geometric length ratio (small) while Δ
    # grows with density — the Remark 11.2 separation's natural habitat.
    dense = table1_rows(
        n=2**12,
        delta=4000,
        diameter=16,
        diameter_tilde=20,
        k=4,
        lam=16.0,
        eps=1.0 / 2**12,
    )
    return {"moderate": moderate, "dense": dense}


@pytest.mark.benchmark(group="table1-overview")
def test_table1_overview(benchmark, emit):
    tables = benchmark.pedantic(build_tables, rounds=1, iterations=1)
    emit(
        "",
        "=== Table 1 regenerated (caption recipe: Λ=n, ε=1/n) ===",
        "",
        "-- moderate network: n=1024, Δ=32, D=16 (caption recipe) --",
        render_table1(tables["moderate"]),
        "",
        "-- high-degree network: n=4096, Δ=4000, Λ=16, D=16 --",
        render_table1(tables["dense"]),
    )
    import math

    sizes = {"moderate": 1024, "dense": 2**12}
    for name, rows in tables.items():
        by_task = {r.task: r for r in rows}
        # Remark 5.3: f_ack upper bound within polylog of its Δ floor.
        fack = by_task["f_ack"]
        polylog_budget = max(2.0, fack.upper_bound / fack.lower_bound)
        assert polylog_budget <= math.log2(sizes[name]) ** 3
        # Thm 6.1: no f_prog upper bound better than the f_ack one.
        assert by_task["f_prog"].upper_bound == fack.upper_bound
    # Remark 11.2: in the dense regime, approximate progress undercuts
    # the progress floor.
    dense = {r.task: r for r in tables["dense"]}
    assert dense["f_approg"].upper_bound < dense["f_prog"].lower_bound
    emit(
        "",
        "dense regime: f_approg upper bound "
        f"({dense['f_approg'].upper_bound:,.0f}) < f_prog lower bound "
        f"({dense['f_prog'].lower_bound:,.0f}) — Remark 11.2's separation.",
    )
