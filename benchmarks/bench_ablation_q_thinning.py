"""Ablation A1: the p/Q transmission thinning of Line 11.

Algorithm 9.1's bcast blocks transmit with probability p/Q,
Q = Θ(log^α Λ).  The thinning is what lets messages cross *long* links
(length close to R_{1-ε}) out of a dense region: those links have no
SINR headroom, so they only decode in near-silent slots, and near-silent
slots have probability ≈ (1-p/Q)^Δ — bounded away from zero only when
Q ≳ Δ·p.

The ablation geometry makes this sharp: a dense ball of broadcasters
plus one *far receiver* at ~0.8·R_{1-ε} from the ball's center, whose
only neighbors sit across a long link.  With thinning the receiver
hears within an epoch; with Q forced to 1 the ball's self-interference
never clears and the receiver starves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.harness import build_approg_stack, format_table
from repro.core.approx_progress import ApproxProgressConfig
from repro.core.events import BcastMessage
from repro.geometry.deployment import uniform_disk
from repro.geometry.points import PointSet
from repro.sinr.params import SINRParameters

N_BALL = 30


def far_receiver_layout(params: SINRParameters, seed: int = 77) -> PointSet:
    """A dense broadcaster ball + one receiver across a long link."""
    ball = uniform_disk(N_BALL, radius=5.0, seed=seed)
    receiver = np.array([[0.8 * params.strong_range, 0.0]])
    return PointSet(
        np.vstack([ball.coords, receiver]), name="far-receiver"
    )


def first_far_reception(stack) -> int | None:
    """Slot of the far receiver's first strong-neighbor bcast decode."""
    receiver = N_BALL
    for event in stack.runtime.trace:
        if event.kind != "receive" or event.node != receiver:
            continue
        _sender, payload = event.data
        if isinstance(payload, BcastMessage) and stack.graph.has_edge(
            payload.origin, receiver
        ):
            return event.slot
    return None


def run_variant(thinned: bool) -> dict:
    params = SINRParameters()
    points = far_receiver_layout(params)
    config = ApproxProgressConfig(
        lambda_bound=16.0,
        eps_approg=0.1,
        alpha=params.alpha,
        t_scale=0.25,
        # Ablation: a vanishing q_scale floors Q at 1 (no thinning).
        q_scale=(0.15 if thinned else 1e-9),
        # Hold the block length constant across variants so the ablation
        # changes ONLY the transmission probability, not exposure time.
        bcast_scale=(6.0 if thinned else 6.0 * 10),
    )
    stack = build_approg_stack(points, params, approg_config=config, seed=9)
    schedule = stack.macs[0].schedule
    for node in range(N_BALL):
        stack.macs[node].bcast(payload=f"m{node}")
    stack.runtime.run(2 * schedule.epoch_slots)
    slot = first_far_reception(stack)
    return {
        "variant": f"Q={config.q_factor}" + ("" if thinned else " (ablated)"),
        "q": config.q_factor,
        "bcast_block": config.bcast_block_slots,
        "far_rx_slot": slot,
        "horizon": 2 * schedule.epoch_slots,
    }


@pytest.mark.benchmark(group="ablation")
def test_ablation_q_thinning(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: [run_variant(True), run_variant(False)],
        rounds=1,
        iterations=1,
    )
    full, ablated = rows
    emit(
        "",
        "=== Ablation A1: Line 11's p/Q thinning "
        "(30-node ball + far receiver) ===",
        format_table(
            ["variant", "bcast block", "far receiver first rx", "horizon"],
            [
                [
                    r["variant"],
                    r["bcast_block"],
                    r["far_rx_slot"] if r["far_rx_slot"] is not None else "never",
                    r["horizon"],
                ]
                for r in rows
            ],
        ),
    )
    # With thinning the long link clears within the run.
    assert full["far_rx_slot"] is not None
    # Without it the ball's self-interference never lets the long link
    # decode (same total exposure: the block was scaled to compensate).
    assert ablated["far_rx_slot"] is None, (
        "far receiver decoded without thinning; geometry too lenient"
    )
    emit(
        "long links at ~R_(1-eps) decode only in near-silent slots; "
        "Q = Θ(log^α Λ) is what makes near-silence likely (Line 11)."
    )
