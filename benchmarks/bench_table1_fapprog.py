"""Table 1, row f_approg (Theorem 9.1) — the paper's headline bound.

Paper claim: approximate progress completes in
``O((log^α Λ + log*(1/ε))·log Λ·log(1/ε))`` — crucially **independent of
the degree Δ** (contrast Theorem 6.1's f_prog >= Δ) and polylogarithmic
in Λ.

Two sweeps on Algorithm 9.1 alone, run through the batched experiment
engine (the Λ-sweep's three equal-size deployments advance in one
lockstep batch):

1. **Δ-sweep**: fixed-area disks with growing population.  Δ triples;
   measured f_approg must stay (nearly) flat — the separation that
   justifies the approximate-progress relaxation.
2. **Λ-sweep**: same population at growing minimum separation (shrinking
   Λ).  Measured f_approg must grow with Λ, tracking the polylog shape.
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import fapprog_upper_bound
from repro.analysis.harness import format_table
from repro.core.approx_progress import ApproxProgressConfig
from repro.experiments import (
    DeploymentSpec,
    TrialPlan,
    deployment_artifacts,
    resolve_deployment,
    run_trials,
)
from repro.sinr.params import SINRParameters

EPS = 0.1
T_SCALE = 0.25  # same Θ-shape, smaller leading constant (DESIGN.md §3)


def plan_for(
    deployment: DeploymentSpec, params: SINRParameters, seed: int
) -> TrialPlan:
    """Algorithm 9.1 saturated for two epochs, Λ measured per deployment."""
    points = resolve_deployment(deployment)
    lam = max(2.0, deployment_artifacts(points, params).metrics.lam)
    return TrialPlan(
        deployment=deployment,
        stack="approg",
        workload="fixed_slots",
        seed=seed,
        params=params,
        approg_config=ApproxProgressConfig(
            lambda_bound=lam,
            eps_approg=EPS,
            alpha=params.alpha,
            t_scale=T_SCALE,
        ),
        options=TrialPlan.pack_options(epochs=2),
    )


def rows_from(results, params: SINRParameters) -> list[dict]:
    return [
        {
            "n": r.n,
            "delta": r.degree,
            "lam": r.lam,
            "epoch": r.extra_value("epoch_slots"),
            "episodes": r.approg_episodes,
            "satisfied": r.approg_satisfied,
            "median": r.approg_median_latency,
            "predicted": fapprog_upper_bound(
                max(r.lam, 2.0), EPS, params.alpha
            ),
        }
        for r in results
    ]


def run_delta_sweep() -> list[dict]:
    params = SINRParameters()
    plans = [
        plan_for(
            DeploymentSpec.of(
                "uniform_disk", n=n, radius=14.0, seed=200 + n
            ),
            params,
            seed=n,
        )
        for n in (20, 40, 80)
    ]
    return rows_from(run_trials(plans), params)


def run_lambda_sweep() -> list[dict]:
    params = SINRParameters()
    plans = [
        plan_for(
            DeploymentSpec.of(
                "uniform_disk",
                n=24,
                radius=16.0,
                min_separation=sep,
                seed=300 + int(sep),
            ),
            params,
            seed=int(sep),
        )
        for sep in (4.0, 2.0, 1.0)  # Λ grows as separation shrinks
    ]
    return rows_from(run_trials(plans), params)


@pytest.mark.benchmark(group="table1-fapprog")
def test_fapprog_flat_in_delta(benchmark, emit):
    rows = benchmark.pedantic(run_delta_sweep, rounds=1, iterations=1)
    emit(
        "",
        "=== Table 1 / f_approg (Thm 9.1): independence from Δ ===",
        format_table(
            ["n", "Δ", "Λ", "epoch", "episodes", "ok", "median f_approg"],
            [
                [
                    r["n"],
                    r["delta"],
                    f"{r['lam']:.1f}",
                    r["epoch"],
                    r["episodes"],
                    r["satisfied"],
                    f"{r['median']:.0f}",
                ]
                for r in rows
            ],
        ),
    )
    # All episodes satisfied within the run.
    for r in rows:
        assert r["satisfied"] >= 0.9 * r["episodes"]
    # Δ quadruples across the sweep; f_approg must NOT track it: allow
    # at most 2x drift while Δ grows > 3x (it tracks Λ, not Δ).
    medians = [r["median"] for r in rows]
    deltas = [r["delta"] for r in rows]
    assert deltas[-1] >= 3 * deltas[0]
    assert medians[-1] <= 2.0 * medians[0], (
        f"f_approg tracked Δ: medians={medians} deltas={deltas}"
    )
    emit(
        f"Δ grew {deltas[0]} -> {deltas[-1]} "
        f"while median f_approg moved {medians[0]:.0f} -> {medians[-1]:.0f}"
    )


@pytest.mark.benchmark(group="table1-fapprog")
def test_fapprog_grows_with_lambda(benchmark, emit):
    rows = benchmark.pedantic(run_lambda_sweep, rounds=1, iterations=1)
    emit(
        "",
        "=== Table 1 / f_approg (Thm 9.1): polylog growth in Λ ===",
        format_table(
            ["Λ", "Δ", "epoch", "median f_approg", "Θ-shape"],
            [
                [
                    f"{r['lam']:.1f}",
                    r["delta"],
                    r["epoch"],
                    f"{r['median']:.0f}",
                    f"{r['predicted']:.0f}",
                ]
                for r in rows
            ],
        ),
    )
    medians = [r["median"] for r in rows]
    lams = [r["lam"] for r in rows]
    assert lams == sorted(lams)
    assert medians == sorted(medians), "f_approg must grow with Λ"
    # Sub-polynomial growth: Λ grew ~4x, latency must grow < 4x the
    # ratio (the bound is polylog, so much slower than linear in Λ...
    # but constants make small sweeps noisy; assert sub-quadratic).
    assert medians[-1] / medians[0] < (lams[-1] / lams[0]) ** 2
