"""Table 1, row global SMB (Theorem 12.7).

Paper claim: global single-message broadcast over the combined absMAC
completes in ``O((D_{G_{1-2ε}} + log(n/ε))·log^{α+1} Λ)`` — linear in
the diameter with polylog factors, *without* a multiplicative Δ or log n
on the D term.

Experiment: BSMB over the full Algorithm 11.1 stack on line networks of
growing hop count (the ``smb`` workload of the experiment engine);
completion slot vs D is compared to the predicted linear-in-D shape.

A second sweep exercises the same protocol at 10x the diameter over the
standalone Algorithm B.1 MAC: BSMB is MAC-agnostic (the absMAC
plug-and-play property), so the front still advances one hop per
acknowledged local broadcast and completion stays linear in D — and
because every plan is a homogeneous Ack population under the columnar
``smb`` workload, the whole scaled sweep rides the vectorized protocol
kernels (:mod:`repro.vectorized.protocols`), which is what makes
120-hop lines affordable (``test_table1_smb_scaled_rides_fast_path``
pins the selection).
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import smb_upper_bound
from repro.analysis.harness import correlation_with_shape, format_table
from repro.core.approx_progress import ApproxProgressConfig
from repro.experiments import DeploymentSpec, TrialPlan, run_trials
from repro.sinr.params import SINRParameters
from repro.vectorized import vector_eligible

HOPS = (2, 5, 8, 12)
SCALED_HOPS = (20, 40, 80, 120)  # 10x the combined-stack sweep
SCALED_EPS_ACK = 0.01  # per-hop failure must stay << 1/D on a line
EPS_SMB = 0.1


def run_sweep() -> list[dict]:
    params = SINRParameters()
    spacing = params.approx_range * 0.9  # keeps G_{1-2eps} connected too
    plans = [
        TrialPlan(
            deployment=DeploymentSpec.of(
                "line_deployment", n=hops + 1, spacing=spacing
            ),
            stack="combined",
            workload="smb",
            seed=hops,
            params=params,
            approg_config=ApproxProgressConfig(
                lambda_bound=2.0,
                eps_approg=0.2,
                alpha=params.alpha,
                t_scale=0.25,
            ),
            options=TrialPlan.pack_options(source=0),
            label=f"smb-hops{hops}",
        )
        for hops in HOPS
    ]
    rows = []
    for result in run_trials(plans):
        rows.append(
            {
                "n": result.n,
                "diameter": result.diameter,
                "diameter_tilde": result.diameter_tilde,
                "completion": result.completion,
                "predicted": smb_upper_bound(
                    result.diameter_tilde or result.n,
                    result.n,
                    EPS_SMB,
                    max(result.lam, 2.0),
                    params.alpha,
                ),
            }
        )
    return rows


@pytest.mark.benchmark(group="table1-smb")
def test_table1_smb(benchmark, emit):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        "",
        "=== Table 1 / global SMB (Thm 12.7): completion vs diameter ===",
        format_table(
            ["n", "D", "D̃", "completion slots", "Θ-shape"],
            [
                [
                    r["n"],
                    r["diameter"],
                    r["diameter_tilde"],
                    r["completion"],
                    f"{r['predicted']:.0f}",
                ]
                for r in rows
            ],
        ),
    )
    completions = [r["completion"] for r in rows]
    predictions = [r["predicted"] for r in rows]
    assert completions == sorted(completions), "SMB must grow with D"
    shape = correlation_with_shape(completions, predictions)
    emit(
        f"shape check: pearson={shape['pearson']:.3f} "
        f"ratio-spread={shape['ratio_spread']:.2f}"
    )
    assert shape["pearson"] > 0.8
    # Linear-in-D: 6x more hops may not cost more than ~12x the slots.
    assert completions[-1] / completions[0] < 2.2 * (HOPS[-1] / HOPS[0])


def scaled_plans() -> list[TrialPlan]:
    """BSMB over Algorithm B.1 lines up to 120 hops (columnar path)."""
    params = SINRParameters()
    spacing = params.approx_range * 0.9
    return [
        TrialPlan(
            deployment=DeploymentSpec.of(
                "line_deployment", n=hops + 1, spacing=spacing
            ),
            stack="ack",
            workload="smb",
            seed=hops,
            eps_ack=SCALED_EPS_ACK,
            options=TrialPlan.pack_options(source=0),
            max_slots=500_000,
            label=f"smb-ack-hops{hops}",
        )
        for hops in SCALED_HOPS
    ]


def run_scaled_sweep() -> list[dict]:
    return [
        {
            "hops": hops,
            "n": result.n,
            "diameter": result.diameter,
            "completion": result.completion,
        }
        for hops, result in zip(SCALED_HOPS, run_trials(scaled_plans()))
    ]


@pytest.mark.benchmark(group="table1-smb")
def test_table1_smb_scaled_fast_path(benchmark, emit):
    rows = benchmark.pedantic(run_scaled_sweep, rounds=1, iterations=1)
    emit(
        "",
        "=== Table 1 / global SMB at 10x D (Alg. B.1 MAC, columnar) ===",
        format_table(
            ["n", "D", "completion slots", "slots/hop"],
            [
                [
                    r["n"],
                    r["diameter"],
                    r["completion"],
                    f"{r['completion'] / r['hops']:.0f}",
                ]
                for r in rows
            ],
        ),
    )
    completions = [r["completion"] for r in rows]
    assert completions == sorted(completions), "SMB must grow with D"
    # Linearity holds across the full scaled range: the per-hop cost of
    # the 120-hop line stays within 2x of the 20-hop line's.
    per_hop = [r["completion"] / r["hops"] for r in rows]
    assert max(per_hop) < 2.0 * min(per_hop)


def test_table1_smb_scaled_rides_fast_path():
    """Every scaled plan is columnar-eligible: the engine's default
    auto-selection runs the 10x sweep on the vectorized protocol
    kernels."""
    assert all(vector_eligible(plan) for plan in scaled_plans())
