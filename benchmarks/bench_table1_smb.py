"""Table 1, row global SMB (Theorem 12.7).

Paper claim: global single-message broadcast over the combined absMAC
completes in ``O((D_{G_{1-2ε}} + log(n/ε))·log^{α+1} Λ)`` — linear in
the diameter with polylog factors, *without* a multiplicative Δ or log n
on the D term.

Experiment: BSMB over the full Algorithm 11.1 stack on line networks of
growing hop count (the ``smb`` workload of the experiment engine);
completion slot vs D is compared to the predicted linear-in-D shape.
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import smb_upper_bound
from repro.analysis.harness import correlation_with_shape, format_table
from repro.core.approx_progress import ApproxProgressConfig
from repro.experiments import DeploymentSpec, TrialPlan, run_trials
from repro.sinr.params import SINRParameters

HOPS = (2, 5, 8, 12)
EPS_SMB = 0.1


def run_sweep() -> list[dict]:
    params = SINRParameters()
    spacing = params.approx_range * 0.9  # keeps G_{1-2eps} connected too
    plans = [
        TrialPlan(
            deployment=DeploymentSpec.of(
                "line_deployment", n=hops + 1, spacing=spacing
            ),
            stack="combined",
            workload="smb",
            seed=hops,
            params=params,
            approg_config=ApproxProgressConfig(
                lambda_bound=2.0,
                eps_approg=0.2,
                alpha=params.alpha,
                t_scale=0.25,
            ),
            options=TrialPlan.pack_options(source=0),
            label=f"smb-hops{hops}",
        )
        for hops in HOPS
    ]
    rows = []
    for result in run_trials(plans):
        rows.append(
            {
                "n": result.n,
                "diameter": result.diameter,
                "diameter_tilde": result.diameter_tilde,
                "completion": result.completion,
                "predicted": smb_upper_bound(
                    result.diameter_tilde or result.n,
                    result.n,
                    EPS_SMB,
                    max(result.lam, 2.0),
                    params.alpha,
                ),
            }
        )
    return rows


@pytest.mark.benchmark(group="table1-smb")
def test_table1_smb(benchmark, emit):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        "",
        "=== Table 1 / global SMB (Thm 12.7): completion vs diameter ===",
        format_table(
            ["n", "D", "D̃", "completion slots", "Θ-shape"],
            [
                [
                    r["n"],
                    r["diameter"],
                    r["diameter_tilde"],
                    r["completion"],
                    f"{r['predicted']:.0f}",
                ]
                for r in rows
            ],
        ),
    )
    completions = [r["completion"] for r in rows]
    predictions = [r["predicted"] for r in rows]
    assert completions == sorted(completions), "SMB must grow with D"
    shape = correlation_with_shape(completions, predictions)
    emit(
        f"shape check: pearson={shape['pearson']:.3f} "
        f"ratio-spread={shape['ratio_spread']:.2f}"
    )
    assert shape["pearson"] > 0.8
    # Linear-in-D: 6x more hops may not cost more than ~12x the slots.
    assert completions[-1] / completions[0] < 2.2 * (HOPS[-1] / HOPS[0])
