"""Table 1, row global SMB (Theorem 12.7).

Paper claim: global single-message broadcast over the combined absMAC
completes in ``O((D_{G_{1-2ε}} + log(n/ε))·log^{α+1} Λ)`` — linear in
the diameter with polylog factors, *without* a multiplicative Δ or log n
on the D term.

Experiment: BSMB over the full Algorithm 11.1 stack on line networks of
growing hop count; completion slot vs D is compared to the predicted
linear-in-D shape.
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import smb_upper_bound
from repro.analysis.harness import (
    build_combined_stack,
    correlation_with_shape,
    format_table,
)
from repro.core.approx_progress import ApproxProgressConfig
from repro.geometry.deployment import line_deployment
from repro.protocols.bsmb import BsmbClient, run_single_message_broadcast
from repro.sinr.params import SINRParameters

HOPS = (2, 5, 8, 12)
EPS_SMB = 0.1


def run_sweep() -> list[dict]:
    params = SINRParameters()
    spacing = params.approx_range * 0.9  # keeps G_{1-2eps} connected too
    rows = []
    for hops in HOPS:
        points = line_deployment(hops + 1, spacing=spacing)
        stack = build_combined_stack(
            points,
            params,
            client_factory=lambda i: BsmbClient(),
            approg_config=ApproxProgressConfig(
                lambda_bound=2.0, eps_approg=0.2, alpha=params.alpha,
                t_scale=0.25,
            ),
            seed=hops,
        )
        completion = run_single_message_broadcast(
            stack.runtime, stack.macs, stack.clients, source=0
        )
        n = len(points)
        rows.append(
            {
                "n": n,
                "diameter": stack.metrics.diameter,
                "diameter_tilde": stack.metrics.diameter_tilde,
                "completion": completion,
                "predicted": smb_upper_bound(
                    stack.metrics.diameter_tilde or n,
                    n,
                    EPS_SMB,
                    max(stack.metrics.lam, 2.0),
                    params.alpha,
                ),
            }
        )
    return rows


@pytest.mark.benchmark(group="table1-smb")
def test_table1_smb(benchmark, emit):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        "",
        "=== Table 1 / global SMB (Thm 12.7): completion vs diameter ===",
        format_table(
            ["n", "D", "D̃", "completion slots", "Θ-shape"],
            [
                [
                    r["n"],
                    r["diameter"],
                    r["diameter_tilde"],
                    r["completion"],
                    f"{r['predicted']:.0f}",
                ]
                for r in rows
            ],
        ),
    )
    completions = [r["completion"] for r in rows]
    predictions = [r["predicted"] for r in rows]
    assert completions == sorted(completions), "SMB must grow with D"
    shape = correlation_with_shape(completions, predictions)
    emit(
        f"shape check: pearson={shape['pearson']:.3f} "
        f"ratio-spread={shape['ratio_spread']:.2f}"
    )
    assert shape["pearson"] > 0.8
    # Linear-in-D: 6x more hops may not cost more than ~12x the slots.
    assert completions[-1] / completions[0] < 2.2 * (HOPS[-1] / HOPS[0])
