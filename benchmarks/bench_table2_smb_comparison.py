"""Table 2 (§2.1): global SMB — this paper vs prior approaches.

The paper's Table 2 is an *analytic* comparison of three bounds; we
reproduce it twice:

1. **Formula grid** — evaluate the three Θ-expressions across the
   parameter space and check the paper's claims: ours improves on
   Daum et al. [14] in the *full* range (they carry an extra
   multiplicative log n on the D-term), and the crossover against
   Jurdziński et al. [32] sits at ``log^{α+1} Λ ≈ log² n``.

2. **Empirical run** — two executable stacks on one dense multihop
   deployment (clusters along a line, so contention is high and the
   MAC actually matters):

   * *ours*: BSMB over Algorithm 11.1, constant per-epoch ε_approg
     (the localized analysis lets epochs run with weak guarantees);
   * *Daum-style [14]*: BSMB forwarding over the standalone epoch
     machinery (Algorithm 9.1 without any ack layer — that is what
     [14]'s global algorithm is) at w.h.p. parameters ε = 1/n², paying
     the multiplicative log n in epoch length;
   * *Decay baseline*: BSMB over the graph-model-style
     :class:`~repro.core.decay.DecayMacLayer`, reported for context
     (Decay does not appear in the paper's Table 2; its *progress*
     separation lives in Theorem 8.1 and is measured by
     ``bench_thm81_decay_approg.py``).

   All three stacks run as :class:`TrialPlan`\\ s through the batched
   experiment engine; the homogeneous Decay population rides the
   columnar protocol kernels (``test_table2_decay_rides_fast_path``),
   while the epoch-machinery stacks run the object executor.
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import (
    smb_bound_daum,
    smb_bound_jurdzinski,
    smb_upper_bound,
)
from repro.analysis.harness import format_table
from repro.core.approx_progress import ApproxProgressConfig, EpochSchedule
from repro.experiments import (
    DeploymentSpec,
    TrialPlan,
    deployment_artifacts,
    resolve_deployment,
    run_trials,
)
from repro.sinr.params import SINRParameters
from repro.vectorized import vector_eligible


def formula_grid() -> list[dict]:
    rows = []
    for d in (8, 64):
        for n in (64, 4096):
            for lam in (4.0, 256.0):
                rows.append(
                    {
                        "D": d,
                        "n": n,
                        "lam": lam,
                        "ours": smb_upper_bound(d, n, 1.0 / n, lam, 3.0),
                        "daum": smb_bound_daum(d, n, lam, 3.0),
                        "jurdzinski": smb_bound_jurdzinski(d, n),
                    }
                )
    return rows


def dense_line_spec(seed=5) -> DeploymentSpec:
    """Five dense clusters along a line: multihop AND high contention."""
    params = SINRParameters()
    spacing = params.approx_range * 0.8
    return DeploymentSpec.of(
        "cluster_deployment",
        n_clusters=5,
        nodes_per_cluster=7,
        cluster_radius=2.0,
        cluster_spacing=spacing,
        min_separation=1.0,
        seed=seed,
    )


def empirical_plans() -> tuple[list[TrialPlan], dict]:
    """The three head-to-head stacks as engine plans, plus context."""
    params = SINRParameters()
    deployment = dense_line_spec()
    points = resolve_deployment(deployment)
    n = len(points)
    metrics = deployment_artifacts(points, params).metrics

    # Shared knowledge: the polynomial bound on Lambda.
    lam = max(metrics.lam, 2.0)
    ours_config = ApproxProgressConfig(
        lambda_bound=lam, eps_approg=0.125, alpha=params.alpha,
        t_scale=0.25,
    )
    daum_config = ApproxProgressConfig(
        lambda_bound=lam,
        eps_approg=1.0 / (n * n),
        alpha=params.alpha,
        t_scale=0.25,
    )
    common = dict(
        deployment=deployment,
        workload="smb",
        seed=1,
        options=TrialPlan.pack_options(source=0),
    )
    plans = [
        TrialPlan(
            stack="combined",
            eps_ack=0.1,
            approg_config=ours_config,
            label="table2-ours",
            **common,
        ),
        TrialPlan(
            stack="approg",
            approg_config=daum_config,
            label="table2-daum",
            **common,
        ),
        TrialPlan(stack="decay", label="table2-decay", **common),
    ]
    context = {
        "n": n,
        "delta": metrics.degree,
        "lam": lam,
        "epoch_ours": EpochSchedule(ours_config).epoch_slots,
        "epoch_daum": EpochSchedule(daum_config).epoch_slots,
    }
    return plans, context


def run_empirical() -> dict:
    plans, row = empirical_plans()
    ours, daum, decay = run_trials(plans)
    row.update(
        ours=ours.completion, daum=daum.completion, decay=decay.completion
    )
    return row


@pytest.mark.benchmark(group="table2-smb")
def test_table2_formula_grid(benchmark, emit):
    rows = benchmark.pedantic(formula_grid, rounds=1, iterations=1)
    emit(
        "",
        "=== Table 2 (analytic): SMB bounds across the parameter space ===",
        format_table(
            ["D", "n", "Λ", "ours", "[14] Daum", "[32] Jurdziński"],
            [
                [
                    r["D"],
                    r["n"],
                    f"{r['lam']:.0f}",
                    f"{r['ours']:.0f}",
                    f"{r['daum']:.0f}",
                    f"{r['jurdzinski']:.0f}",
                ]
                for r in rows
            ],
        ),
    )
    # Paper claim 1: we improve on [14] in the full range.
    for r in rows:
        assert r["ours"] <= r["daum"] * 1.01
    # Paper claim 2: the [32] comparison flips with the regime.
    we_win = [r for r in rows if r["ours"] < r["jurdzinski"]]
    they_win = [r for r in rows if r["jurdzinski"] < r["ours"]]
    assert we_win and they_win, "expected a crossover against [32]"
    emit(
        f"crossover vs [32]: we win in {len(we_win)}/8 cells "
        "(small Λ / large n), they win in the rest — as §2.1 states."
    )


@pytest.mark.benchmark(group="table2-smb")
def test_table2_empirical_stacks(benchmark, emit):
    row = benchmark.pedantic(run_empirical, rounds=1, iterations=1)
    emit(
        "",
        "=== Table 2 (empirical): three stacks, dense 5-cluster line ===",
        format_table(
            ["n", "Δ", "Λ", "ours", "Daum-style [14]", "Decay MAC"],
            [
                [
                    row["n"],
                    row["delta"],
                    f"{row['lam']:.1f}",
                    row["ours"],
                    row["daum"],
                    row["decay"],
                ]
            ],
        ),
        f"epoch length: ours={row['epoch_ours']} vs "
        f"Daum-style={row['epoch_daum']} "
        "(the multiplicative log n shows up directly in the epoch)",
    )
    # Who wins, as Table 2 predicts: the layered stack with the
    # localized (constant-ε) analysis beats the w.h.p.-forced epochs.
    assert row["ours"] < row["daum"]
    # Mechanism check: the forced w.h.p. parameters inflate the epoch.
    assert row["epoch_daum"] > 1.5 * row["epoch_ours"]
    # The Decay baseline ran to completion on the columnar path.
    assert row["decay"] > 0


def test_table2_decay_rides_fast_path():
    """The Decay-MAC baseline plan is columnar-eligible (the other two
    stacks carry the epoch machinery, which stays on the object
    executor)."""
    plans, _context = empirical_plans()
    ours, daum, decay = plans
    assert not vector_eligible(ours)
    assert not vector_eligible(daum)
    assert vector_eligible(decay)
