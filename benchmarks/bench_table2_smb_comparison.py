"""Table 2 (§2.1): global SMB — this paper vs prior approaches.

The paper's Table 2 is an *analytic* comparison of three bounds; we
reproduce it twice:

1. **Formula grid** — evaluate the three Θ-expressions across the
   parameter space and check the paper's claims: ours improves on
   Daum et al. [14] in the *full* range (they carry an extra
   multiplicative log n on the D-term), and the crossover against
   Jurdziński et al. [32] sits at ``log^{α+1} Λ ≈ log² n``.

2. **Empirical run** — two executable stacks on one dense multihop
   deployment (clusters along a line, so contention is high and the
   MAC actually matters):

   * *ours*: BSMB over Algorithm 11.1, constant per-epoch ε_approg
     (the localized analysis lets epochs run with weak guarantees);
   * *Daum-style [14]*: BSMB forwarding over the standalone epoch
     machinery (Algorithm 9.1 without any ack layer — that is what
     [14]'s global algorithm is) at w.h.p. parameters ε = 1/n², paying
     the multiplicative log n in epoch length.

   (Decay does not appear in the paper's Table 2; its separation lives
   in Theorem 8.1 and is measured by ``bench_thm81_decay_approg.py``.)
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import (
    smb_bound_daum,
    smb_bound_jurdzinski,
    smb_upper_bound,
)
from repro.analysis.harness import (
    build_approg_stack,
    build_combined_stack,
    format_table,
)
from repro.core.approx_progress import ApproxProgressConfig
from repro.geometry.deployment import cluster_deployment
from repro.protocols.bsmb import BsmbClient, run_single_message_broadcast
from repro.sinr.params import SINRParameters


def formula_grid() -> list[dict]:
    rows = []
    for d in (8, 64):
        for n in (64, 4096):
            for lam in (4.0, 256.0):
                rows.append(
                    {
                        "D": d,
                        "n": n,
                        "lam": lam,
                        "ours": smb_upper_bound(d, n, 1.0 / n, lam, 3.0),
                        "daum": smb_bound_daum(d, n, lam, 3.0),
                        "jurdzinski": smb_bound_jurdzinski(d, n),
                    }
                )
    return rows


def dense_line_points(seed=5):
    """Five dense clusters along a line: multihop AND high contention."""
    params = SINRParameters()
    spacing = params.approx_range * 0.8
    return cluster_deployment(
        n_clusters=5,
        nodes_per_cluster=7,
        cluster_radius=2.0,
        cluster_spacing=spacing,
        min_separation=1.0,
        seed=seed,
    )


def run_empirical() -> dict:
    params = SINRParameters()
    points = dense_line_points()
    n = len(points)

    # Shared knowledge: the polynomial bound on Lambda.
    probe = build_combined_stack(points, params, seed=0)
    lam = max(probe.metrics.lam, 2.0)

    # Ours: combined MAC, constant-probability epochs.
    ours_stack = build_combined_stack(
        points,
        params,
        eps_ack=0.1,
        client_factory=lambda i: BsmbClient(),
        approg_config=ApproxProgressConfig(
            lambda_bound=lam, eps_approg=0.125, alpha=params.alpha,
            t_scale=0.25,
        ),
        seed=1,
    )
    ours = run_single_message_broadcast(
        ours_stack.runtime, ours_stack.macs, ours_stack.clients, source=0
    )

    # Daum-style: standalone epoch machinery at w.h.p. parameters.
    daum_stack = build_approg_stack(
        points,
        params,
        client_factory=lambda i: BsmbClient(),
        approg_config=ApproxProgressConfig(
            lambda_bound=lam,
            eps_approg=1.0 / (n * n),
            alpha=params.alpha,
            t_scale=0.25,
        ),
        seed=1,
    )
    daum = run_single_message_broadcast(
        daum_stack.runtime, daum_stack.macs, daum_stack.clients, source=0
    )

    return {
        "n": n,
        "delta": ours_stack.metrics.degree,
        "lam": lam,
        "ours": ours,
        "daum": daum,
        "epoch_ours": ours_stack.macs[0].schedule.epoch_slots,
        "epoch_daum": daum_stack.macs[0].schedule.epoch_slots,
    }


@pytest.mark.benchmark(group="table2-smb")
def test_table2_formula_grid(benchmark, emit):
    rows = benchmark.pedantic(formula_grid, rounds=1, iterations=1)
    emit(
        "",
        "=== Table 2 (analytic): SMB bounds across the parameter space ===",
        format_table(
            ["D", "n", "Λ", "ours", "[14] Daum", "[32] Jurdziński"],
            [
                [
                    r["D"],
                    r["n"],
                    f"{r['lam']:.0f}",
                    f"{r['ours']:.0f}",
                    f"{r['daum']:.0f}",
                    f"{r['jurdzinski']:.0f}",
                ]
                for r in rows
            ],
        ),
    )
    # Paper claim 1: we improve on [14] in the full range.
    for r in rows:
        assert r["ours"] <= r["daum"] * 1.01
    # Paper claim 2: the [32] comparison flips with the regime.
    we_win = [r for r in rows if r["ours"] < r["jurdzinski"]]
    they_win = [r for r in rows if r["jurdzinski"] < r["ours"]]
    assert we_win and they_win, "expected a crossover against [32]"
    emit(
        f"crossover vs [32]: we win in {len(we_win)}/8 cells "
        "(small Λ / large n), they win in the rest — as §2.1 states."
    )


@pytest.mark.benchmark(group="table2-smb")
def test_table2_empirical_stacks(benchmark, emit):
    row = benchmark.pedantic(run_empirical, rounds=1, iterations=1)
    emit(
        "",
        "=== Table 2 (empirical): two stacks, dense 5-cluster line ===",
        format_table(
            ["n", "Δ", "Λ", "ours", "Daum-style [14]"],
            [
                [
                    row["n"],
                    row["delta"],
                    f"{row['lam']:.1f}",
                    row["ours"],
                    row["daum"],
                ]
            ],
        ),
        f"epoch length: ours={row['epoch_ours']} vs "
        f"Daum-style={row['epoch_daum']} "
        "(the multiplicative log n shows up directly in the epoch)",
    )
    # Who wins, as Table 2 predicts: the layered stack with the
    # localized (constant-ε) analysis beats the w.h.p.-forced epochs.
    assert row["ours"] < row["daum"]
    # Mechanism check: the forced w.h.p. parameters inflate the epoch.
    assert row["epoch_daum"] > 1.5 * row["epoch_ours"]
