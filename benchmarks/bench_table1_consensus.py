"""Table 1, row global CONS (Corollary 5.5).

Paper claim: network-wide consensus over the absMAC completes in
``O(D·(Δ + log Λ)·log(nΛ/ε))`` — i.e. O(D · f_ack), the product of the
diameter and the acknowledgment bound (the consensus algorithm of [44]
is analyzed purely in terms of f_ack; f_prog never enters).

Experiment: flood-based consensus over the combined stack on line
networks of growing diameter (the ``consensus`` workload of the
experiment engine, parity inputs ``i % 2``); completion vs the D·f_ack
shape.

A second sweep runs the same algorithm at 4x the diameter over the
standalone Algorithm B.1 MAC — the [44] analysis is *purely* in terms
of f_ack, so any MAC honoring the acknowledgment guarantee carries it —
riding the columnar protocol kernels
(``test_table1_consensus_scaled_rides_fast_path`` pins the selection);
agreement and validity must survive 2·D+2 waves on a 24-hop line.
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import consensus_upper_bound
from repro.analysis.harness import correlation_with_shape, format_table
from repro.core.approx_progress import ApproxProgressConfig
from repro.experiments import DeploymentSpec, TrialPlan, run_trials
from repro.sinr.params import SINRParameters
from repro.vectorized import vector_eligible

HOPS = (2, 4, 6)
SCALED_HOPS = (8, 16, 24)
SCALED_EPS_ACK = 0.01
EPS_CONS = 0.1


def run_sweep() -> list[dict]:
    params = SINRParameters()
    spacing = params.approx_range * 0.9  # keeps G_{1-2eps} connected too
    plans = [
        TrialPlan(
            deployment=DeploymentSpec.of(
                "line_deployment", n=hops + 1, spacing=spacing
            ),
            stack="combined",
            workload="consensus",
            seed=hops,
            params=params,
            approg_config=ApproxProgressConfig(
                lambda_bound=2.0,
                eps_approg=0.2,
                alpha=params.alpha,
                t_scale=0.25,
            ),
            options=TrialPlan.pack_options(waves=2 * hops + 2),
            label=f"consensus-hops{hops}",
        )
        for hops in HOPS
    ]
    rows = []
    for result in run_trials(plans):
        n = result.n
        rows.append(
            {
                "n": n,
                "diameter": result.diameter,
                "agreed": result.extra_value("agreed"),
                # Parity inputs: the max-id node n-1 holds (n-1) % 2.
                "valid": result.extra_value("decided_value") == (n - 1) % 2,
                "completion": result.completion,
                "predicted": consensus_upper_bound(
                    result.diameter or n,
                    result.degree,
                    max(result.lam, 2.0),
                    n,
                    EPS_CONS,
                ),
            }
        )
    return rows


@pytest.mark.benchmark(group="table1-consensus")
def test_table1_consensus(benchmark, emit):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        "",
        "=== Table 1 / global CONS (Cor. 5.5): completion vs diameter ===",
        format_table(
            ["n", "D", "agreed", "valid", "completion slots", "Θ-shape"],
            [
                [
                    r["n"],
                    r["diameter"],
                    r["agreed"],
                    r["valid"],
                    r["completion"],
                    f"{r['predicted']:.0f}",
                ]
                for r in rows
            ],
        ),
    )
    assert all(r["agreed"] for r in rows), "agreement violated"
    assert all(r["valid"] for r in rows), "validity violated"
    completions = [r["completion"] for r in rows]
    predictions = [r["predicted"] for r in rows]
    assert completions == sorted(completions)
    shape = correlation_with_shape(completions, predictions)
    emit(
        f"shape check: pearson={shape['pearson']:.3f} "
        f"ratio-spread={shape['ratio_spread']:.2f}"
    )
    assert shape["pearson"] > 0.8


def scaled_plans() -> list[TrialPlan]:
    """Consensus over Algorithm B.1 lines up to 24 hops (columnar)."""
    params = SINRParameters()
    spacing = params.approx_range * 0.9
    return [
        TrialPlan(
            deployment=DeploymentSpec.of(
                "line_deployment", n=hops + 1, spacing=spacing
            ),
            stack="ack",
            workload="consensus",
            seed=hops,
            eps_ack=SCALED_EPS_ACK,
            options=TrialPlan.pack_options(waves=2 * hops + 2),
            max_slots=3_000_000,
            label=f"consensus-ack-hops{hops}",
        )
        for hops in SCALED_HOPS
    ]


def run_scaled_sweep() -> list[dict]:
    rows = []
    for hops, result in zip(SCALED_HOPS, run_trials(scaled_plans())):
        n = result.n
        rows.append(
            {
                "hops": hops,
                "n": n,
                "agreed": result.extra_value("agreed"),
                "valid": result.extra_value("decided_value") == (n - 1) % 2,
                "completion": result.completion,
            }
        )
    return rows


@pytest.mark.benchmark(group="table1-consensus")
def test_table1_consensus_scaled_fast_path(benchmark, emit):
    rows = benchmark.pedantic(run_scaled_sweep, rounds=1, iterations=1)
    emit(
        "",
        "=== Table 1 / global CONS at 4x D (Alg. B.1 MAC, columnar) ===",
        format_table(
            ["n", "agreed", "valid", "completion slots"],
            [
                [r["n"], r["agreed"], r["valid"], r["completion"]]
                for r in rows
            ],
        ),
    )
    assert all(r["agreed"] for r in rows), "agreement violated"
    assert all(r["valid"] for r in rows), "validity violated"
    completions = [r["completion"] for r in rows]
    assert completions == sorted(completions)


def test_table1_consensus_scaled_rides_fast_path():
    """Every scaled plan is columnar-eligible: the engine's default
    auto-selection runs the diameter sweep on the vectorized protocol
    kernels."""
    assert all(vector_eligible(plan) for plan in scaled_plans())
