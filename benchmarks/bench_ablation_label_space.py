"""Ablation A2: the temporary-label space of the MIS (§9.3.2).

The paper draws temporary labels from ``[1, poly(Λ/ε)]`` so that labels
are locally unique w.h.p. (Lemma 10.1) and the label-comparison MIS
settles.  The ablation shrinks the label space: with a single label
every comparison ties, no node ever becomes a dominator, the sender
sets S_φ empty out after phase 1, and the multi-phase sparsification
cascade disappears.

Measured on the paired layout (where the MIS genuinely engages): the
fraction of pairs with exactly one surviving sender after phase 1,
versus label-space size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.harness import build_approg_stack, format_table
from repro.core.approx_progress import ApproxProgressConfig
from repro.geometry.points import PointSet
from repro.sinr.params import SINRParameters


def paired_layout(n_pairs=6, pair_distance=2.0, pair_spacing=60.0):
    coords = []
    for k in range(n_pairs):
        coords.append([k * pair_spacing, 0.0])
        coords.append([k * pair_spacing + pair_distance, 0.0])
    return PointSet(np.array(coords), name=f"pairs({n_pairs})")


def run_variant(label_space: int, n_pairs: int = 6) -> dict:
    params = SINRParameters()
    points = paired_layout(n_pairs)
    config = ApproxProgressConfig(
        lambda_bound=4.0,
        eps_approg=0.2,
        alpha=params.alpha,
        p=0.25,
        mu=0.03,
        t_scale=0.2,
        label_space=label_space,
    )
    stack = build_approg_stack(points, params, approg_config=config, seed=13)
    schedule = stack.macs[0].schedule
    for mac in stack.macs:
        mac.bcast(payload=f"m{mac.node_id}")
    # One full epoch: state after the final phase reflects S_2.
    stack.runtime.run(schedule.epoch_slots)
    survivors = {
        mac.node_id
        for mac in stack.macs
        if mac.engine is not None and mac.engine._in_s
    }
    exactly_one = sum(
        1
        for k in range(n_pairs)
        if len({2 * k, 2 * k + 1} & survivors) == 1
    )
    dead_pairs = sum(
        1
        for k in range(n_pairs)
        if len({2 * k, 2 * k + 1} & survivors) == 0
    )
    return {
        "labels": label_space,
        "pairs_one_survivor": exactly_one,
        "pairs_no_survivor": dead_pairs,
        "n_pairs": n_pairs,
    }


@pytest.mark.benchmark(group="ablation")
def test_ablation_label_space(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: [run_variant(1), run_variant(2), run_variant(4096)],
        rounds=1,
        iterations=1,
    )
    emit(
        "",
        "=== Ablation A2: MIS temporary-label space (6 sender pairs) ===",
        format_table(
            ["label space", "pairs w/ 1 survivor", "pairs w/ 0 survivors"],
            [
                [r["labels"], r["pairs_one_survivor"], r["pairs_no_survivor"]]
                for r in rows
            ],
        ),
    )
    degenerate, small, big = rows
    # One label: every comparison ties, so no pair with a mutual H̃̃
    # edge keeps a sender (pairs whose estimation missed the edge can
    # still survive as isolated dominators — estimation noise, not MIS).
    assert degenerate["pairs_no_survivor"] >= degenerate["n_pairs"] // 2
    assert degenerate["pairs_one_survivor"] < big["pairs_one_survivor"]
    # poly(Λ/ε) labels: collisions vanish, each pair keeps exactly one
    # sender (the Lemma 10.1 regime).
    assert big["pairs_one_survivor"] == big["n_pairs"]
    assert big["pairs_no_survivor"] == 0
    emit(
        "a poly(Λ/ε) label space is what keeps the sparsification "
        "cascade alive — with collisions the MIS starves the sender "
        "sets instead of thinning them (Lemma 10.1)."
    )
