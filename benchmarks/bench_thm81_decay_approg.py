"""Theorem 8.1: Decay cannot give fast approximate progress; Alg 9.1 can.

On the two-ball geometry (sparse pair B1 beside dense far-field balls,
all nodes broadcasting), Decay's probability sweep synchronizes B1 with
B2: whenever B1's two nodes transmit aggressively enough to reach each
other, B2's Δ nodes transmit too and bury the SINR.  B1's per-sweep
success probability is O(1/Δ), so Decay needs Ω(Δ·log(1/ε)) slots for
B1's first progress.  Algorithm 9.1 thins traffic by Q = Θ(log^α Λ) and
sparsifies B2 through its MIS cascade, staying polylogarithmic.

We use the hardened two-sided variant of the construction (dense balls
at ±1.5R instead of one ball at 2R — see the class docstring and
DESIGN.md §3) so the crushing regime is reachable at laptop-scale Δ;
the measured claims are the two *growth laws*: Decay's progress time
grows linearly with Δ while Algorithm 9.1's tracks only polylog Λ
(Λ ~ √Δ here, since the range must scale to fit the dense ball).
The absolute crossover sits beyond laptop-scale Δ and is reported by
extrapolation.

The Decay half of the sweep — 5 seeds × 3 degrees of a homogeneous
Decay population — runs on the columnar runtime
(:func:`measure_decay_progress` defaults to ``vectorized=True``),
which the equivalence tests pin decode-for-decode identical to the
object runtime, so the measured growth law is unchanged while the
sweep's dominant cost (per-node slot dispatch at Δ=192) drops away.
"""

from __future__ import annotations

import statistics

import pytest

from repro.analysis.bounds import decay_approg_lower_bound
from repro.analysis.harness import format_table
from repro.core.approx_progress import ApproxProgressConfig
from repro.lowerbounds.constructions import DecayLowerBoundNetwork
from repro.lowerbounds.experiments import (
    measure_approx_progress_on,
    measure_decay_progress,
)
from repro.sinr.graphs import link_length_ratio

DELTAS = (16, 64, 192)
EPS = 0.1
MAX_SLOTS = 300_000
DECAY_SEEDS = (1, 2, 3, 4, 5)


def hardened(delta: int, seed: int) -> DecayLowerBoundNetwork:
    return DecayLowerBoundNetwork(
        delta=delta, seed=seed, center_factor=1.5, two_sided=True
    )


def run_sweep() -> list[dict]:
    rows = []
    for delta in DELTAS:
        decay_times = []
        for seed in DECAY_SEEDS:
            network = hardened(delta, seed)
            result = measure_decay_progress(
                network, eps=EPS, max_slots=MAX_SLOTS, seed=seed
            )
            decay_times.append(
                result["progress_slot"]
                if result["progress_slot"] is not None
                else MAX_SLOTS
            )
        network = hardened(delta, DECAY_SEEDS[0])
        lam = max(link_length_ratio(network.graph), 2.0)
        approg = measure_approx_progress_on(
            network,
            eps=EPS,
            max_slots=MAX_SLOTS,
            seed=DECAY_SEEDS[0],
            config=ApproxProgressConfig(
                lambda_bound=lam,
                eps_approg=EPS,
                alpha=network.params.alpha,
                t_scale=0.25,
            ),
        )
        rows.append(
            {
                "delta": delta,
                "lam": lam,
                "decay_median": statistics.median(decay_times),
                "decay_all": decay_times,
                "approg": approg["progress_slot"],
                "lower_bound": decay_approg_lower_bound(delta, EPS),
            }
        )
    return rows


@pytest.mark.benchmark(group="thm81-decay")
def test_thm81_decay_vs_approg(benchmark, emit):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        "",
        "=== Theorem 8.1: B1's first progress, Decay vs Algorithm 9.1 ===",
        format_table(
            [
                "Δ",
                "Λ",
                "Decay median (5 seeds)",
                "Alg 9.1",
                "Ω(Δ·log(1/ε)) shape",
            ],
            [
                [
                    r["delta"],
                    f"{r['lam']:.0f}",
                    f"{r['decay_median']:.0f}",
                    r["approg"],
                    f"{r['lower_bound']:.0f}",
                ]
                for r in rows
            ],
        ),
    )
    # Algorithm 9.1 always completes within budget.
    assert all(r["approg"] is not None for r in rows)

    decay_growth = rows[-1]["decay_median"] / max(rows[0]["decay_median"], 1)
    approg_growth = rows[-1]["approg"] / max(rows[0]["approg"], 1)
    emit(
        f"growth over Δ {DELTAS[0]} -> {DELTAS[-1]} "
        f"({DELTAS[-1] // DELTAS[0]}x): Decay x{decay_growth:.1f} "
        f"(Ω(Δ) law) vs Alg 9.1 x{approg_growth:.2f} (polylog Λ law)"
    )
    # The separation: Decay's progress time tracks Δ; Alg 9.1's does not.
    assert decay_growth > 3.0, (
        f"Decay did not degrade with Δ: {[r['decay_all'] for r in rows]}"
    )
    assert approg_growth < 2.5, (
        f"Alg 9.1 should stay polylog: {[r['approg'] for r in rows]}"
    )
    assert decay_growth > 2.0 * approg_growth
    # Honest extrapolation: where the Ω(Δ) line crosses Alg 9.1's cost.
    slope = (rows[-1]["decay_median"] - rows[0]["decay_median"]) / (
        DELTAS[-1] - DELTAS[0]
    )
    if slope > 0:
        crossover = DELTAS[-1] + (
            rows[-1]["approg"] - rows[-1]["decay_median"]
        ) / slope
        emit(
            f"projected crossover (Decay slower in absolute slots) at "
            f"Δ ≈ {crossover:.0f} — the asymptotic regime of the theorem."
        )
