"""Table 1, row global MMB (Theorem 12.7).

Paper claim: k-message broadcast completes in
``O(D̃·log^{α+1} Λ + k·(Δ + polylog)·log(nk/ε))`` — the D-term and the
k-term are *additive*.  The baseline pipeline bound from per-hop local
broadcast ([29], §2.1) is multiplicative: ``O((D + k)·(Δ·log n + log² n))``.

Experiment: BMMB over the combined stack on a fixed line network with
growing k; the per-message marginal cost (slope in k) must stay roughly
constant (additive k-term) rather than scale with D.
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import mmb_upper_bound
from repro.analysis.harness import (
    build_combined_stack,
    format_table,
)
from repro.core.approx_progress import ApproxProgressConfig
from repro.geometry.deployment import line_deployment
from repro.protocols.bmmb import BmmbClient, run_multi_message_broadcast
from repro.sinr.params import SINRParameters

KS = (1, 2, 4, 8)
HOPS = 4
EPS_MMB = 0.1


def run_sweep() -> list[dict]:
    params = SINRParameters()
    spacing = params.approx_range * 0.9  # keeps G_{1-2eps} connected too
    rows = []
    for k in KS:
        points = line_deployment(HOPS + 1, spacing=spacing)
        stack = build_combined_stack(
            points,
            params,
            client_factory=lambda i: BmmbClient(),
            approg_config=ApproxProgressConfig(
                lambda_bound=2.0, eps_approg=0.2, alpha=params.alpha,
                t_scale=0.25,
            ),
            seed=k,
        )
        arrivals = {0: [f"msg-{j}" for j in range(k)]}
        completion = run_multi_message_broadcast(
            stack.runtime, stack.macs, stack.clients, arrivals=arrivals
        )
        n = len(points)
        rows.append(
            {
                "k": k,
                "completion": completion,
                "predicted": mmb_upper_bound(
                    stack.metrics.diameter_tilde or n,
                    k,
                    stack.metrics.degree,
                    n,
                    EPS_MMB,
                    max(stack.metrics.lam, 2.0),
                    params.alpha,
                ),
            }
        )
    return rows


@pytest.mark.benchmark(group="table1-mmb")
def test_table1_mmb(benchmark, emit):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    completions = [r["completion"] for r in rows]
    # Marginal cost per extra message between consecutive k values.
    margins = [
        (completions[i + 1] - completions[i]) / (KS[i + 1] - KS[i])
        for i in range(len(KS) - 1)
    ]
    emit(
        "",
        "=== Table 1 / global MMB (Thm 12.7): additive k-term ===",
        format_table(
            ["k", "completion slots", "Θ-shape"],
            [
                [r["k"], r["completion"], f"{r['predicted']:.0f}"]
                for r in rows
            ],
        ),
        f"per-message marginal slots: {[f'{m:.0f}' for m in margins]}",
    )
    assert completions == sorted(completions), "MMB must grow with k"
    # Additivity: the marginal cost must not blow up with k (a D·k
    # multiplicative law would make late margins ~D times earlier ones).
    assert max(margins) <= 4.0 * max(min(margins), 1.0), (
        f"marginal costs suggest multiplicative D·k: {margins}"
    )
