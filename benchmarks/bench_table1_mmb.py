"""Table 1, row global MMB (Theorem 12.7).

Paper claim: k-message broadcast completes in
``O(D̃·log^{α+1} Λ + k·(Δ + polylog)·log(nk/ε))`` — the D-term and the
k-term are *additive*.  The baseline pipeline bound from per-hop local
broadcast ([29], §2.1) is multiplicative: ``O((D + k)·(Δ·log n + log² n))``.

Experiment: BMMB over the combined stack on a fixed line network with
growing k (the ``mmb`` workload of the experiment engine — all four
trials share one deployment and one lockstep batch); the per-message
marginal cost (slope in k) must stay roughly constant (additive k-term)
rather than scale with D.

A second sweep pushes k to 16 on a 20-hop line over the standalone
Algorithm B.1 MAC (the protocols are MAC-agnostic): the FIFO pipeline's
additivity claim is the same, and the homogeneous Ack population rides
the columnar protocol kernels end-to-end
(``test_table1_mmb_scaled_rides_fast_path`` pins the selection).
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import mmb_upper_bound
from repro.analysis.harness import format_table
from repro.core.approx_progress import ApproxProgressConfig
from repro.experiments import DeploymentSpec, TrialPlan, run_trials
from repro.sinr.params import SINRParameters
from repro.vectorized import vector_eligible

KS = (1, 2, 4, 8)
HOPS = 4
SCALED_KS = (2, 4, 8, 16)
SCALED_HOPS = 20
SCALED_EPS_ACK = 0.01
EPS_MMB = 0.1


def run_sweep() -> list[dict]:
    params = SINRParameters()
    spacing = params.approx_range * 0.9  # keeps G_{1-2eps} connected too
    deployment = DeploymentSpec.of(
        "line_deployment", n=HOPS + 1, spacing=spacing
    )
    plans = [
        TrialPlan(
            deployment=deployment,
            stack="combined",
            workload="mmb",
            seed=k,
            params=params,
            approg_config=ApproxProgressConfig(
                lambda_bound=2.0,
                eps_approg=0.2,
                alpha=params.alpha,
                t_scale=0.25,
            ),
            options=TrialPlan.pack_options(
                arrivals=((0, tuple(f"msg-{j}" for j in range(k))),)
            ),
            label=f"mmb-k{k}",
        )
        for k in KS
    ]
    rows = []
    for k, result in zip(KS, run_trials(plans)):
        rows.append(
            {
                "k": k,
                "completion": result.completion,
                "predicted": mmb_upper_bound(
                    result.diameter_tilde or result.n,
                    k,
                    result.degree,
                    result.n,
                    EPS_MMB,
                    max(result.lam, 2.0),
                    params.alpha,
                ),
            }
        )
    return rows


@pytest.mark.benchmark(group="table1-mmb")
def test_table1_mmb(benchmark, emit):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    completions = [r["completion"] for r in rows]
    # Marginal cost per extra message between consecutive k values.
    margins = [
        (completions[i + 1] - completions[i]) / (KS[i + 1] - KS[i])
        for i in range(len(KS) - 1)
    ]
    emit(
        "",
        "=== Table 1 / global MMB (Thm 12.7): additive k-term ===",
        format_table(
            ["k", "completion slots", "Θ-shape"],
            [
                [r["k"], r["completion"], f"{r['predicted']:.0f}"]
                for r in rows
            ],
        ),
        f"per-message marginal slots: {[f'{m:.0f}' for m in margins]}",
    )
    assert completions == sorted(completions), "MMB must grow with k"
    # Additivity: the marginal cost must not blow up with k (a D·k
    # multiplicative law would make late margins ~D times earlier ones).
    assert max(margins) <= 4.0 * max(min(margins), 1.0), (
        f"marginal costs suggest multiplicative D·k: {margins}"
    )


def scaled_plans() -> list[TrialPlan]:
    """BMMB over Algorithm B.1: k up to 16 on a 20-hop line (columnar)."""
    params = SINRParameters()
    spacing = params.approx_range * 0.9
    deployment = DeploymentSpec.of(
        "line_deployment", n=SCALED_HOPS + 1, spacing=spacing
    )
    return [
        TrialPlan(
            deployment=deployment,
            stack="ack",
            workload="mmb",
            seed=k,
            eps_ack=SCALED_EPS_ACK,
            options=TrialPlan.pack_options(
                arrivals=((0, tuple(f"msg-{j}" for j in range(k))),)
            ),
            max_slots=800_000,
            label=f"mmb-ack-k{k}",
        )
        for k in SCALED_KS
    ]


def run_scaled_sweep() -> list[dict]:
    return [
        {"k": k, "completion": result.completion}
        for k, result in zip(SCALED_KS, run_trials(scaled_plans()))
    ]


@pytest.mark.benchmark(group="table1-mmb")
def test_table1_mmb_scaled_fast_path(benchmark, emit):
    rows = benchmark.pedantic(run_scaled_sweep, rounds=1, iterations=1)
    completions = [r["completion"] for r in rows]
    margins = [
        (completions[i + 1] - completions[i])
        / (SCALED_KS[i + 1] - SCALED_KS[i])
        for i in range(len(SCALED_KS) - 1)
    ]
    emit(
        "",
        "=== Table 1 / global MMB at k=16 (Alg. B.1 MAC, columnar) ===",
        format_table(
            ["k", "completion slots"],
            [[r["k"], r["completion"]] for r in rows],
        ),
        f"per-message marginal slots: {[f'{m:.0f}' for m in margins]}",
    )
    assert completions == sorted(completions), "MMB must grow with k"
    # The additive k-term survives the deeper pipeline: late margins
    # stay within a small constant of early ones.
    assert max(margins) <= 4.0 * max(min(margins), 1.0), (
        f"marginal costs suggest multiplicative D·k: {margins}"
    )


def test_table1_mmb_scaled_rides_fast_path():
    """Every scaled plan is columnar-eligible: the engine's default
    auto-selection runs the k-sweep on the vectorized protocol
    kernels."""
    assert all(vector_eligible(plan) for plan in scaled_plans())
