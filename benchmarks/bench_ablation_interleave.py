"""Ablation A3: why Algorithm 11.1 interleaves two engines (§11).

The paper combines Algorithm B.1 (even slots) and Algorithm 9.1 (odd
slots) because each alone misses one guarantee: B.1 never beats the
f_prog >= Δ floor on progress, and 9.1 never acknowledges at all
(Remark 10.19).  This ablation runs all three layers on one dense
deployment and tabulates which guarantees each actually provides.
"""

from __future__ import annotations

import pytest

from repro.analysis.harness import (
    build_ack_stack,
    build_approg_stack,
    build_combined_stack,
    format_table,
)
from repro.core.approx_progress import ApproxProgressConfig
from repro.geometry.deployment import uniform_disk
from repro.sinr.graphs import link_length_ratio, strong_connectivity_graph
from repro.sinr.params import SINRParameters

BROADCASTERS = list(range(0, 24, 2))


def run_variant(kind: str) -> dict:
    params = SINRParameters()
    points = uniform_disk(24, radius=11.0, seed=88)
    lam = max(2.0, link_length_ratio(strong_connectivity_graph(points, params)))
    approg_config = ApproxProgressConfig(
        lambda_bound=lam, eps_approg=0.15, alpha=params.alpha, t_scale=0.25
    )
    builders = {
        "combined (Alg 11.1)": lambda: build_combined_stack(
            points, params, approg_config=approg_config, seed=3
        ),
        "ack only (Alg B.1)": lambda: build_ack_stack(
            points, params, eps_ack=0.1, seed=3
        ),
        "approg only (Alg 9.1)": lambda: build_approg_stack(
            points, params, approg_config=approg_config, seed=3
        ),
    }
    stack = builders[kind]()
    for node in BROADCASTERS:
        stack.macs[node].bcast(payload=f"m{node}")
    # Run a fixed horizon: long enough for combined/ack to finish.
    horizon = 3 * approg_config.bcast_block_slots + 12_000
    stack.runtime.run(horizon)
    acks = stack.ack_report()
    progress = stack.approg_report()
    acked = sum(1 for r in acks.records if r.ack_slot is not None)
    return {
        "kind": kind,
        "acked": f"{acked}/{len(acks.records)}",
        "acked_n": acked,
        "progress": f"{len(progress.latencies())}/{len(progress.records)}",
        "progress_frac": (
            len(progress.latencies()) / max(len(progress.records), 1)
        ),
        "progress_median": (
            sorted(progress.latencies())[len(progress.latencies()) // 2]
            if progress.latencies()
            else None
        ),
    }


@pytest.mark.benchmark(group="ablation")
def test_ablation_engine_interleave(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: [
            run_variant("combined (Alg 11.1)"),
            run_variant("ack only (Alg B.1)"),
            run_variant("approg only (Alg 9.1)"),
        ],
        rounds=1,
        iterations=1,
    )
    emit(
        "",
        "=== Ablation A3: engine interleaving (dense disk, 12 bcasts) ===",
        format_table(
            ["layer", "acked", "approg episodes ok", "median f_approg"],
            [
                [
                    r["kind"],
                    r["acked"],
                    r["progress"],
                    r["progress_median"],
                ]
                for r in rows
            ],
        ),
    )
    combined, ack_only, approg_only = rows
    # Combined: both guarantees.
    assert combined["acked_n"] == len(BROADCASTERS)
    assert combined["progress_frac"] >= 0.9
    # Ack-only still (slowly) yields progress but acks are its job.
    assert ack_only["acked_n"] == len(BROADCASTERS)
    # Approg-only NEVER acknowledges (Remark 10.19).
    assert approg_only["acked_n"] == 0
    assert approg_only["progress_frac"] >= 0.9
    emit(
        "each engine alone misses one contract (B.1 the progress bound, "
        "9.1 the ack); the interleave of §11 is necessary, at a 2x slot "
        "cost."
    )
