"""Setuptools shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 517 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` and plain
``pip install -e .`` (with a modern pip) work from the same metadata.
"""

from setuptools import setup

setup()
