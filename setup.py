"""Setuptools shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 517 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` and plain
``pip install -e .`` (with a modern pip) work from the same metadata.

It also best-effort compiles the native slot-loop kernel
(``src/repro/native/_advance.c`` — a plain ctypes shared library, not a
CPython extension): install keeps working on machines without a C
compiler, where ``repro.native.available()`` reports False and the
pure-numpy fallback stays active.  ``make native`` rebuilds explicitly.
"""

import runpy
from pathlib import Path

from setuptools import setup


def _build_native_kernel() -> None:
    """Compile the ctypes kernel if a compiler is around; never fail.

    ``build.py`` is import-safe standalone (stdlib only), so it runs
    here before the package itself is installed.
    """
    script = Path(__file__).parent / "src" / "repro" / "native" / "build.py"
    try:
        module = runpy.run_path(str(script))
        module["build"](quiet=True)
    except Exception as exc:  # install must not break without a compiler
        print(f"skipping native kernel build: {exc}")


_build_native_kernel()
setup()
