# Developer entry points.  Everything runs from the repository root and
# injects PYTHONPATH=src (the package is not required to be installed).

PY ?= python

.PHONY: test test-fast native bench bench-smoke bench-record \
	bench-compare bench-regression docs-check lint service-smoke \
	staticcheck verify

# Tier-1 verification: the full test suite.
test:
	PYTHONPATH=src $(PY) -m pytest -x -q

# Inner-loop subset: skip the @slow large equivalence matrices.  CI and
# bare `make test` still run everything.
test-fast:
	PYTHONPATH=src $(PY) -m pytest -x -q -m "not slow"

# Build (or refresh) the native slot-loop kernel — a plain ctypes
# shared library next to its C source (src/repro/native/_advance.so).
# Fails when no C compiler is available; the package itself degrades
# gracefully without the build (pure-numpy fallback).
native:
	PYTHONPATH=src $(PY) -m repro.native.build --force

# Paper-artifact benchmarks (prints measured-vs-predicted tables).
bench:
	PYTHONPATH=src $(PY) -m pytest benchmarks -q --benchmark-only

# Fast bit-rot gate: every bench script's smallest configuration
# (imports + one tiny sweep each, statistical assertions skipped).
bench-smoke:
	$(PY) scripts/bench_smoke.py

# Regenerate the committed perf records (BENCH_vectorized.json,
# BENCH_protocols.json, BENCH_fading.json, BENCH_mobility.json,
# BENCH_sparse.json, BENCH_native.json, BENCH_service.json) by running
# the recorded benchmarks at their full configuration.
# REPRO_BENCH_STRICT=0 relaxes the absolute speedup bars (bit-identity
# stays asserted): in the regression gate the *relative* 20% comparison
# of bench-compare is the arbiter.
bench-record:
	PYTHONPATH=src REPRO_BENCH_STRICT=0 $(PY) -m pytest \
		benchmarks/bench_vectorized_stack.py \
		benchmarks/bench_fading_robustness.py \
		benchmarks/bench_mobility_churn.py \
		benchmarks/bench_sparse_sinr.py \
		benchmarks/bench_native_kernel.py \
		benchmarks/bench_service.py -q --benchmark-only

# Compare the fresh records against the committed baselines: the
# counters-only speedup may not regress more than 20%.
bench-compare:
	$(PY) scripts/bench_compare.py

# The CI bench-regression job, reproduced locally.
bench-regression: bench-record bench-compare

# Documentation completeness: every bench_*.py must be catalogued in
# docs/benchmarks.md, and the doc suite must exist.
docs-check:
	$(PY) scripts/check_docs.py

# Style gate: ruff (configured in pyproject.toml) when available, a
# stdlib approximation otherwise (offline dev containers).
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check . && ruff format --check .; \
	else \
		echo "ruff not installed; running stdlib fallback checks"; \
		$(PY) scripts/lint_fallback.py; \
	fi

# End-to-end service smoke: boot the TCP job server, submit a tiny job
# through the client, assert a streamed, bit-identical result.
service-smoke:
	PYTHONPATH=src $(PY) scripts/service_smoke.py

# reprolint: the repo's invariant analyzer (determinism, plan purity,
# service concurrency, executor parity, registry exhaustiveness —
# rules catalogued in docs/invariants.md).  Pure stdlib; exits nonzero
# on any unsuppressed finding.
staticcheck:
	PYTHONPATH=src $(PY) -m repro.staticcheck

# Everything the CI gate cares about: the verify matrix's three steps,
# the staticcheck and lint jobs, the service smoke leg, and the
# bench-regression job.
verify: test staticcheck docs-check bench-smoke service-smoke lint bench-regression
