# Developer entry points.  Everything runs from the repository root and
# injects PYTHONPATH=src (the package is not required to be installed).

PY ?= python

.PHONY: test bench bench-smoke docs-check verify

# Tier-1 verification: the full test suite.
test:
	PYTHONPATH=src $(PY) -m pytest -x -q

# Paper-artifact benchmarks (prints measured-vs-predicted tables).
bench:
	PYTHONPATH=src $(PY) -m pytest benchmarks -q --benchmark-only

# Fast bit-rot gate: every bench script's smallest configuration
# (imports + one tiny sweep each, statistical assertions skipped).
bench-smoke:
	$(PY) scripts/bench_smoke.py

# Documentation completeness: every bench_*.py must be catalogued in
# docs/benchmarks.md, and the doc suite must exist.
docs-check:
	$(PY) scripts/check_docs.py

# Everything the CI gate cares about.
verify: test docs-check bench-smoke
