"""Dual-graph demo: strong links, gray-zone links, and exact broadcast.

The paper's model distinguishes three nested graphs (§4.3, Remark 4.6,
Remark 7.2):

* G_{1-2ε} — where *approximate progress* is promised (Def. 7.1),
* G_{1-ε}  — where local broadcast is reliable (the absMAC's G),
* G_1      — the outer decodability limit; links in G_1 \\ G_{1-ε}
  (the "gray zone") may deliver opportunistically but carry no
  guarantee.

This script builds a three-node chain with one strong link and one
gray-zone link and shows:

1. by default, gray-zone messages are delivered when physics allows
   (the paper's main setting);
2. under a gray-zone adversary erasing all unreliable links, the
   guaranteed traffic is untouched;
3. with Remark 4.6's exact local broadcast enabled, the MAC itself
   discards gray-zone messages, making rcv events exactly G_{1-ε}.

Run:  python examples/dual_graph_links.py
"""

import numpy as np

from repro import GrayZoneAdversary, SINRParameters
from repro.analysis.harness import (
    attach_exact_local_broadcast,
    build_ack_stack,
    format_table,
)
from repro.geometry.points import PointSet
from repro.sinr.graphs import strong_connectivity_graph


def chain(params: SINRParameters) -> PointSet:
    """0 —strong— 1 —gray— 2: the middle node broadcasts."""
    gray = 0.95 * params.transmission_range  # beyond R_(1-ε), inside R
    return PointSet(np.array([[0.0, 0.0], [5.0, 0.0], [5.0 + gray, 0.0]]))


def run(mode: str) -> dict:
    params = SINRParameters()
    points = chain(params)
    adversary = None
    if mode == "gray zone jammed":
        graph = strong_connectivity_graph(points, params)
        adversary = GrayZoneAdversary(graph, gray_drop=1.0)
    stack = build_ack_stack(
        points, params, eps_ack=0.2, seed=1, adversary=adversary
    )
    if mode == "exact broadcast (Rmk 4.6)":
        attach_exact_local_broadcast(stack)
    message = stack.macs[1].bcast(payload="hello")
    stack.runtime.run_until(lambda r: not stack.macs[1].busy)
    return {
        "mode": mode,
        "strong rcv (node 0)": message.mid in stack.macs[0].delivered_mids,
        "gray rcv (node 2)": message.mid in stack.macs[2].delivered_mids,
        "acked": message.mid in stack.macs[1].acked_mids,
    }


def main() -> None:
    rows = [
        run("default (paper setting)"),
        run("gray zone jammed"),
        run("exact broadcast (Rmk 4.6)"),
    ]
    print("three-node chain: 1 broadcasts; 0 is a strong neighbor, 2 a")
    print("gray-zone neighbor (decodable but beyond R_(1-ε))\n")
    print(
        format_table(
            ["mode", "strong rcv", "gray rcv", "acked"],
            [
                [
                    r["mode"],
                    r["strong rcv (node 0)"],
                    r["gray rcv (node 2)"],
                    r["acked"],
                ]
                for r in rows
            ],
        )
    )
    print(
        "\nThe guarantee set never changes — only the opportunistic "
        "gray-zone delivery\ndoes.  That is why the absMAC contract is "
        "stated on G_(1-ε) and approximate\nprogress on G_(1-2ε): "
        "everything outside is best-effort (Remarks 4.6, 7.2)."
    )


if __name__ == "__main__":
    main()
