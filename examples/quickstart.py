"""Quickstart: local broadcast over the SINR absMAC in ~40 lines.

Builds a random wireless deployment, runs the paper's combined MAC
layer (Algorithm 11.1) on it, broadcasts from a few nodes, and checks
the absMAC guarantees with the built-in spec checker.

Run:  python examples/quickstart.py
"""

from repro import (
    AbsMacContract,
    SINRParameters,
    check_contract,
    build_combined_stack,
    run_local_broadcast_experiment,
    uniform_disk,
)
from repro.analysis.bounds import fack_upper_bound, fapprog_upper_bound


def main() -> None:
    # 1. A deployment: 30 nodes uniformly in a disk, unit minimum
    #    separation (the paper's near-field normalization).
    points = uniform_disk(30, radius=12.0, seed=7)

    # 2. The physical model: path loss alpha, SINR threshold beta,
    #    ambient noise N, and the strong-connectivity slack epsilon.
    params = SINRParameters(
        power=1.0, alpha=3.0, beta=1.5, noise=1e-4, epsilon=0.1
    )

    # 3. The full absMAC stack (Algorithm 11.1: B.1 acknowledgments on
    #    even slots, Algorithm 9.1 approximate progress on odd slots).
    stack = build_combined_stack(points, params, eps_ack=0.1, eps_approg=0.1)
    print(f"network: {stack.metrics.describe()}")
    print(f"epoch:   {stack.macs[0].schedule.describe()}")

    # 4. Broadcast from five nodes and run until every ack fires.
    acks, progress = run_local_broadcast_experiment(
        stack, broadcasters=[0, 6, 12, 18, 24]
    )

    print(f"\nacknowledgments ({len(acks.records)} broadcasts):")
    print(f"  mean latency: {acks.mean_latency():.0f} slots")
    print(f"  max latency:  {acks.max_latency()} slots")
    print(f"  complete:     {acks.completeness_fraction():.0%}")

    print(f"\napproximate progress ({len(progress.records)} episodes):")
    print(f"  mean latency: {progress.mean_latency():.0f} slots")
    print(f"  max latency:  {progress.max_latency()} slots")

    # 5. Check the Theorem 11.1 contract (bounds evaluated with a
    #    generous constant, since Θ-formulas carry none).
    lam = max(stack.metrics.lam, 2.0)
    contract = AbsMacContract(
        fack=40 * fack_upper_bound(stack.metrics.degree, lam, 0.1),
        eps_ack=0.1,
        fapprog=40 * fapprog_upper_bound(lam, 0.1, params.alpha),
        eps_approg=0.1,
    )
    summary = check_contract(
        stack.runtime.trace, stack.graph, stack.approx_graph, contract
    )
    print(
        f"\ncontract: ack ok={summary['ack_ok']} "
        f"({summary['ack_success_fraction']:.0%}), "
        f"approx progress ok={summary['approg_ok']} "
        f"({summary['approg_success_fraction']:.0%})"
    )


if __name__ == "__main__":
    main()
