"""Walk-through of the Theorem 6.1 / Figure 1 impossibility argument.

Recreates the figure's two-parallel-lines network interactively:
shows the geometry, probes the SINR of concurrent cross links, executes
the optimal centralized schedule, and demonstrates why the relaxed
*approximate progress* contract (Definition 7.1) escapes the Δ floor.

Run:  python examples/lower_bound_demo.py
"""

from repro.analysis.harness import format_table
from repro.lowerbounds.constructions import ProgressLowerBoundNetwork
from repro.lowerbounds.experiments import optimal_schedule_progress


def main() -> None:
    delta = 5  # the value drawn in the paper's Figure 1
    network = ProgressLowerBoundNetwork(delta=delta)
    print(
        f"Figure 1 geometry: two lines of Δ={delta} nodes, "
        f"{network.line_distance:.0f} units apart "
        f"(= R_(1-ε) = 10·Δ)\n"
    )

    print("Step 1 — every node has degree exactly Δ in G_(1-ε):")
    degrees = sorted({deg for _, deg in network.graph.degree})
    print(f"  degrees present: {degrees}\n")

    print("Step 2 — one cross transmission decodes; two annihilate:")
    channel = network.channel()
    v0, u0 = 0, network.partner(0)
    lone = channel.link_sinr(v0, u0, [v0])
    pair = channel.link_sinr(v0, u0, [v0, 1])
    print(
        format_table(
            ["transmitters", "SINR at u0", "beta", "decodes?"],
            [
                ["{v0}", f"{lone:.2f}", network.params.beta, lone >= 1.5],
                ["{v0, v1}", f"{pair:.4f}", network.params.beta, pair >= 1.5],
            ],
        )
    )

    print(
        "\nStep 3 — run the OPTIMAL centralized schedule (one cross pair "
        "per slot,\nthe best physics allows):"
    )
    result = optimal_schedule_progress(network)
    per_node = sorted(result["per_node_progress"].items())
    print(
        format_table(
            ["U-node", "progress at slot"],
            [[node, slot] for node, slot in per_node],
        )
    )
    print(
        f"\n  worst-case progress = {result['max_progress']} = Δ: no "
        "implementation can beat it\n  (Theorem 6.1) — the absMAC "
        "f_prog <= polylog promise is unimplementable in SINR."
    )

    cross_in_gtilde = sum(
        1
        for v in network.v_nodes
        if network.approx_graph.has_edge(v, network.partner(v))
    )
    print(
        f"\nStep 4 — the escape hatch: the {delta} cross links have "
        f"length exactly R_(1-ε),\nso G_(1-2ε) contains "
        f"{cross_in_gtilde} of them.  Approximate progress "
        "(Definition 7.1)\nis only promised for G̃-neighbors, so this "
        "worst case is exempt — and Theorem 9.1\nimplements it in "
        "polylog time.  That is the paper in one picture."
    )


if __name__ == "__main__":
    main()
