"""Sensor field scenario: multi-message dissemination across clusters.

The paper's motivating setting (§1): a wireless sensor network where
density varies wildly — dense instrument clusters joined by a sparse
backbone — and several sensors must broadcast readings network-wide.
Global interference couples the clusters even though they are many hops
apart, which is exactly what graph-based MAC models miss and the SINR
absMAC handles.

The script runs BMMB (multi-message broadcast, [37]) over the paper's
absMAC on a clustered field, and contrasts the completion time with the
same protocol over the Decay MAC baseline.

Run:  python examples/sensor_field_broadcast.py
"""

from repro import SINRParameters, cluster_deployment
from repro.analysis.harness import (
    build_combined_stack,
    build_decay_stack,
    format_table,
)
from repro.core.approx_progress import ApproxProgressConfig
from repro.core.decay import DecayConfig
from repro.protocols.bmmb import BmmbClient, run_multi_message_broadcast

# Field size and traffic, module-level so the example smoke test
# (tests/test_examples.py) can shrink them.  Reading keys must stay
# valid node ids (< N_CLUSTERS * NODES_PER_CLUSTER).
N_CLUSTERS = 4
NODES_PER_CLUSTER = 6
READINGS = {
    0: ["temp=21.4C@site0"],
    7: ["vibration=0.3g@site1"],
    14: ["humidity=44%@site2"],
}


def build_field(seed: int = 3):
    """Dense instrument clusters strung along a valley."""
    params = SINRParameters()
    points = cluster_deployment(
        n_clusters=N_CLUSTERS,
        nodes_per_cluster=NODES_PER_CLUSTER,
        cluster_radius=2.0,
        cluster_spacing=params.approx_range * 0.8,
        min_separation=1.0,
        seed=seed,
    )
    return points, params


def run_stack(kind: str) -> dict:
    points, params = build_field()
    if kind == "sinr-absmac":
        stack = build_combined_stack(
            points,
            params,
            client_factory=lambda i: BmmbClient(),
            approg_config=ApproxProgressConfig(
                lambda_bound=16.0, eps_approg=0.15, alpha=params.alpha,
                t_scale=0.25,
            ),
            seed=1,
        )
    else:
        # Fairness: both MACs know only the Λ-derived contention bound
        # Ñ = 4Λ² (the paper's model: n and positions unknown).  B.1
        # adapts its budget to the *actual* contention; Decay cannot.
        stack = build_decay_stack(
            points,
            params,
            client_factory=lambda i: BmmbClient(),
            decay_config=DecayConfig(
                contention_bound=SINRParameters.max_contention_bound(16.0),
                eps_ack=0.1,
            ),
            seed=1,
        )
    # Sensors in different clusters report readings.
    completion = run_multi_message_broadcast(
        stack.runtime, stack.macs, stack.clients, arrivals=READINGS
    )
    all_tokens = [t for tokens in READINGS.values() for t in tokens]
    delivered = sum(1 for c in stack.clients if c.has_all(all_tokens))
    return {
        "stack": kind,
        "n": len(points),
        "degree": stack.metrics.degree,
        "completion": completion,
        "delivered": f"{delivered}/{len(points)}",
    }


def main() -> None:
    rows = [run_stack("sinr-absmac"), run_stack("decay-mac")]
    print(
        f"sensor field: {N_CLUSTERS} clusters x {NODES_PER_CLUSTER} "
        f"sensors, {len(READINGS)} concurrent readings\n"
    )
    print(
        format_table(
            ["MAC stack", "n", "Δ", "completion (slots)", "delivered"],
            [
                [r["stack"], r["n"], r["degree"], r["completion"], r["delivered"]]
                for r in rows
            ],
        )
    )
    print(
        "\nBoth stacks run the *identical* BMMB protocol object — the "
        "absMAC interface\nhides the radio entirely (the paper's "
        "plug-and-play property, §1)."
    )


if __name__ == "__main__":
    main()
