"""Backend selection: the fused C slot loop vs. the numpy reference.

Runs one counters-only Decay sweep three ways — backend auto-selected,
pure-numpy forced (``native=False``), and, when the compiled kernel is
built, native forced (``native=True``) — prints which backend each run
actually used, and verifies the defining contract: the results are
dataclass-equal, bit for bit.  Build the kernel with ``make native``;
without it the demo still runs (everything falls back to numpy).

Run:  PYTHONPATH=src python examples/native_backend_demo.py
"""

from repro import native
from repro.experiments import (
    DeploymentSpec,
    ExecutionPolicy,
    TrialPlan,
    run_trials,
    seeded_plans,
)
from repro.simulation.rng import spawn_trial_seeds

N_NODES = 200
RADIUS = 60.0
SLOTS = 400
TRIALS = 4


def make_plans() -> list[TrialPlan]:
    base = TrialPlan(
        deployment=DeploymentSpec.of(
            "uniform_disk", n=N_NODES, radius=RADIUS, seed=3
        ),
        stack="decay",
        workload="fixed_slots",
        options=TrialPlan.pack_options(slots=SLOTS),
        # Counters-only is the shape the C kernel fuses; with physical
        # tracing on, every slot would take the numpy step instead.
        record_physical=False,
        label="native-demo",
    )
    return seeded_plans(base, spawn_trial_seeds(TRIALS, seed=11))


def main() -> None:
    built = native.available()
    print(
        f"compiled kernel ({native.lib_path().name}): "
        f"{'built' if built else 'not built — run `make native`'}"
    )

    plans = make_plans()
    legs = [("auto", None), ("numpy (forced)", False)]
    if built:
        legs.append(("native (forced)", True))

    results = {}
    for label, selector in legs:
        results[label] = run_trials(
            plans, ExecutionPolicy(vectorize=True, native=selector)
        )
        backend = (
            "native"
            if (selector if selector is not None else built)
            else "numpy"
        )
        sample = results[label][0]
        print(
            f"  {label:<16} ran backend={backend:<6} "
            f"({sample.transmissions} transmissions, "
            f"{sample.receptions} receptions in trial 0)"
        )

    reference = results["numpy (forced)"]
    assert all(leg == reference for leg in results.values())
    print(
        f"all {len(results)} backends agree on {TRIALS} trials of "
        f"{N_NODES} nodes x {SLOTS} slots: bit-identical"
    )


if __name__ == "__main__":
    main()
