"""Emergency consensus scenario: agree on evacuation under jamming.

Corollary 5.5's application: a disaster-response ad-hoc network must
reach network-wide consensus (evacuate: yes/no) over nothing but the
SINR radio — no infrastructure, unknown positions, and in this script a
hostile jammer erasing a fraction of all receptions.

The consensus algorithm ([44]-style, O(D·f_ack)) runs over the paper's
absMAC; the absMAC's acknowledgment machinery absorbs the erasures by
simply taking longer, and agreement/validity survive.

Run:  python examples/emergency_consensus.py
"""

import numpy as np

from repro import JammingAdversary, SINRParameters, uniform_disk
from repro.analysis.harness import build_combined_stack, format_table
from repro.core.approx_progress import ApproxProgressConfig
from repro.protocols.consensus import ConsensusClient, run_consensus

# Scenario size and jamming grid, module-level so the example smoke
# test (tests/test_examples.py) can shrink them.
N_RESPONDERS = 14
FIELD_RADIUS = 11.0
DROPS = (0.0, 0.15, 0.3)


def run_vote(drop_probability: float, seed: int = 2) -> dict:
    params = SINRParameters()
    points = uniform_disk(N_RESPONDERS, radius=FIELD_RADIUS, seed=21)
    n = len(points)
    # 9 of 14 responders vote "evacuate" (1); the rest vote "stay" (0).
    votes = [1 if i % 3 != 2 else 0 for i in range(n)]
    adversary = (
        JammingAdversary(
            drop_probability=drop_probability,
            rng=np.random.default_rng(seed),
        )
        if drop_probability > 0
        else None
    )
    stack = build_combined_stack(
        points,
        params,
        client_factory=lambda i: ConsensusClient(i, votes[i], waves=2 * n + 2),
        approg_config=ApproxProgressConfig(
            lambda_bound=16.0, eps_approg=0.15, alpha=params.alpha,
            t_scale=0.25,
        ),
        seed=seed,
        adversary=adversary,
    )
    result = run_consensus(stack.runtime, stack.macs, stack.clients)
    return {
        "drop": f"{drop_probability:.0%}",
        "agreed": result.agreed,
        "decision": result.decided_value() if result.agreed else "-",
        "valid": result.agreed
        and result.decided_value() == votes[n - 1],  # max-id node's vote
        "slots": result.completion_slot,
    }


def main() -> None:
    rows = [run_vote(drop) for drop in DROPS]
    print(
        f"emergency consensus: {N_RESPONDERS} responders vote on evacuation\n"
    )
    print(
        format_table(
            ["jamming", "agreed", "decision", "valid", "completion (slots)"],
            [
                [r["drop"], r["agreed"], r["decision"], r["valid"], r["slots"]]
                for r in rows
            ],
        )
    )
    print(
        "\nAgreement and validity survive heavy jamming: the flooding "
        "waves carry enough\nredundancy that erased receptions never "
        "break safety, and the absMAC's\nbudget-driven acknowledgments "
        "keep termination bounded — Cor. 5.5's modularity."
    )


if __name__ == "__main__":
    main()
