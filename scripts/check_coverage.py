#!/usr/bin/env python
"""check-coverage: soft coverage floors over the pytest-cov report.

CI's 3.12 verify leg runs the tier-1 suite under ``pytest-cov``
(``--cov=repro --cov-report=xml``), uploads ``coverage.xml`` as a
workflow artifact, and then runs this script.  The floors are
deliberately *soft*: low enough that ordinary refactoring never trips
them, high enough that wholesale-untested subsystems (a new package
with no tests, a test file accidentally deselected) fail loudly.

Two floors:

* ``OVERALL_FLOOR`` — line coverage across the whole ``repro`` package.
* ``SINR_FLOOR`` — line coverage of ``repro/sinr`` specifically: the
  physics layer carries bit-identity contracts whose tests are the
  whole safety net for the sparse/dense split, so it gets a higher bar.

When ``coverage.xml`` is absent the script warns and exits 0 — local
dev boxes without pytest-cov installed (the offline container) and
bench-only CI jobs must not fail on a missing report.
"""

from __future__ import annotations

import sys
import xml.etree.ElementTree as ET
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
REPORT = REPO / "coverage.xml"

OVERALL_FLOOR = 0.80
SINR_FLOOR = 0.85


def file_rates(root: ET.Element) -> dict[str, tuple[int, int]]:
    """``filename -> (covered, total)`` statement counts per file."""
    rates: dict[str, tuple[int, int]] = {}
    for cls in root.iter("class"):
        filename = cls.get("filename", "")
        covered = total = 0
        for line in cls.iter("line"):
            total += 1
            covered += int(line.get("hits", "0")) > 0
        if total:
            prev = rates.get(filename, (0, 0))
            rates[filename] = (prev[0] + covered, prev[1] + total)
    return rates


def aggregate(
    rates: dict[str, tuple[int, int]], prefix: str | None = None
) -> float | None:
    covered = total = 0
    for filename, (c, t) in rates.items():
        normalized = filename.replace("\\", "/")
        if prefix is not None and prefix not in normalized:
            continue
        covered += c
        total += t
    return covered / total if total else None


def main() -> int:
    if not REPORT.is_file():
        print(
            "check-coverage: WARNING — coverage.xml not found (run "
            "`pytest --cov=repro --cov-report=xml` with pytest-cov "
            "installed); skipping the coverage floors"
        )
        return 0
    root = ET.parse(REPORT).getroot()
    rates = file_rates(root)
    if not rates:
        print("check-coverage: WARNING — empty coverage report; skipping")
        return 0

    failures: list[str] = []
    overall = aggregate(rates)
    print(f"  overall repro coverage: {overall:.1%} (floor {OVERALL_FLOOR:.0%})")
    if overall < OVERALL_FLOOR:
        failures.append(
            f"overall coverage {overall:.1%} below floor {OVERALL_FLOOR:.0%}"
        )
    sinr = aggregate(rates, prefix="repro/sinr/")
    if sinr is None:
        failures.append("no repro/sinr files in the coverage report")
    else:
        print(f"  repro.sinr coverage: {sinr:.1%} (floor {SINR_FLOOR:.0%})")
        if sinr < SINR_FLOOR:
            failures.append(
                f"repro.sinr coverage {sinr:.1%} below floor "
                f"{SINR_FLOOR:.0%}"
            )

    if failures:
        print(f"check-coverage: FAILED ({len(failures)} problem(s))")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("check-coverage: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
