#!/usr/bin/env python
"""bench-smoke: run every benchmark script's smallest configuration.

`make bench` runs the full paper-artifact suite with its statistical
assertions — minutes of work that nobody runs on every push, which is
how benchmark scripts rot.  This smoke runner keeps them honest at CI
cost: it imports every ``benchmarks/bench_*.py`` module and executes
one *tiny* configuration of its sweep function (constants shrunk via
the registry below, statistical assertions skipped — those belong to
the full bench run), so an API drift anywhere under ``src/`` breaks the
build immediately instead of on the next hand-run of ``make bench``.

The registry is exhaustive by construction: a new ``bench_*.py``
without a smoke entry fails this script (and `make bench-smoke` /
CI with it), the same completeness contract `scripts/check_docs.py`
enforces for the catalogue.

Run via ``make bench-smoke``.
"""

from __future__ import annotations

import importlib
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))


def _shrink(module, **overrides):
    for name, value in overrides.items():
        if not hasattr(module, name):
            raise AttributeError(
                f"{module.__name__} has no constant {name!r}; "
                "update the smoke registry"
            )
        setattr(module, name, value)


def smoke_ablation_interleave(m):
    _shrink(m, BROADCASTERS=list(range(0, 24, 6)))
    return m.run_variant("ack only (Alg B.1)")


def smoke_ablation_label_space(m):
    return m.run_variant(label_space=4, n_pairs=2)


def smoke_ablation_q_thinning(m):
    _shrink(m, N_BALL=10)
    return m.run_variant(thinned=True)


def smoke_engine_batching(m):
    _shrink(m, TRIALS=2)
    plans = m.make_plans()
    legacy, _ = m.run_legacy(plans)
    vectorized, _ = m.run_vectorized(plans)
    assert vectorized == legacy  # the engine contract, in miniature
    return len(vectorized)


def smoke_fading_robustness(m):
    _shrink(
        m,
        SHADOWING_DBS=(6.0,),
        POWER_SPREADS=(4.0,),
        ACK_N=10,
        ACK_RADIUS=8.0,
        ACK_SEEDS=1,
        PROTOCOL_SEEDS=1,
        SMB_CLUSTERS=3,
        SMB_PER_CLUSTER=3,
        MMB_N=10,
        MMB_RADIUS=7.0,
        CONS_N=10,
        CONS_RADIUS=7.0,
        CONS_WAVES=4,
        SPEEDUP_N=60,
        SPEEDUP_RADIUS=40.0,
        SPEEDUP_SEEDS=2,
        SPEEDUP_SLOTS=120,
    )
    report = m.run_benchmark(rounds=1)
    assert all(r["bit_identical"] for r in report["rows"])
    return report


def smoke_mobility_churn(m):
    _shrink(
        m,
        SPEEDS=(2.0,),
        CHURN_RATES=(4e-4,),
        ACK_N=10,
        ACK_RADIUS=8.0,
        ACK_SEEDS=1,
        PROTOCOL_SEEDS=1,
        SMB_N=10,
        SMB_RADIUS=7.0,
        MMB_N=10,
        MMB_RADIUS=7.0,
        CONS_N=10,
        CONS_RADIUS=7.0,
        CONS_WAVES=4,
        SPEEDUP_N=60,
        SPEEDUP_RADIUS=40.0,
        SPEEDUP_SEEDS=2,
        SPEEDUP_SLOTS=120,
    )
    report = m.run_benchmark(rounds=1)
    assert all(r["bit_identical"] for r in report["rows"])
    return report


def smoke_fig1(m):
    _shrink(m, DELTAS=(2, 4), POWER_DELTAS=(5,))
    m.run_sweep()
    return m.run_power_sweep()


def smoke_service(m):
    _shrink(m, LEVELS=(4,))
    report = m.run_load()
    # The in-module probe already asserted service == library; here we
    # only check the recorder produced a sane row.
    assert report["rows"][0]["jobs_per_sec"] > 0
    return report


def smoke_sparse_sinr(m):
    _shrink(m, NS=(48, 96), BROADCASTERS=16, SLOTS=6)
    report = m.run_benchmark(rounds=1)
    # The exact mode's bit-identity contract holds at any size; the
    # speedup bars belong to the full bench run (tiny n favours dense).
    assert all(
        r["bit_identical"] for r in report["rows"] if r["mode"] == "exact"
    )
    return report


def smoke_native_kernel(m):
    _shrink(m, N=100, SEEDS=2, SLOTS=120, RADIUS=40.0)
    report = m.run_comparison(rounds=1)
    # Bit-identity across numpy/native/object holds at any size and on
    # either backend; the speedup bars belong to the full bench run.
    assert all(r["bit_identical"] for r in report["rows"])
    return report


def smoke_table1_overview(m):
    return m.build_tables()


def smoke_table1_fack(m):
    _shrink(m, POPULATIONS=(8,))
    return m.run_sweep()


def smoke_table1_fapprog(m):
    _shrink(m, EPS=0.2)
    return m.run_lambda_sweep()


def smoke_table1_smb(m):
    _shrink(m, HOPS=(2,), SCALED_HOPS=(6,))
    assert all(m.vector_eligible(p) for p in m.scaled_plans())
    m.run_scaled_sweep()
    return m.run_sweep()


def smoke_table1_mmb(m):
    _shrink(m, KS=(1,), HOPS=2, SCALED_KS=(2,), SCALED_HOPS=4)
    assert all(m.vector_eligible(p) for p in m.scaled_plans())
    m.run_scaled_sweep()
    return m.run_sweep()


def smoke_table1_consensus(m):
    _shrink(m, HOPS=(2,), SCALED_HOPS=(4,))
    assert all(m.vector_eligible(p) for p in m.scaled_plans())
    m.run_scaled_sweep()
    return m.run_sweep()


def smoke_table2(m):
    plans, _context = m.empirical_plans()
    assert m.vector_eligible(plans[-1])  # the Decay baseline row
    return m.formula_grid()


def smoke_thm81(m):
    _shrink(m, DELTAS=(8,), MAX_SLOTS=30_000, DECAY_SEEDS=(1,))
    return m.run_sweep()


def smoke_vectorized_stack(m):
    _shrink(m, N=100, SEEDS=2, SLOTS=120, RADIUS=40.0)
    report = m.run_comparison(rounds=1)
    assert all(r["bit_identical"] for r in report["rows"])
    # The protocol sweep (BSMB/BMMB/consensus rows), miniaturized.
    _shrink(
        m,
        PROTOCOL_SEEDS=2,
        SMB_CLUSTERS=10,
        SMB_PER_CLUSTER=6,
        MMB_N=80,
        MMB_RADIUS=22.0,
        CONS_N=80,
        CONS_RADIUS=31.0,
    )
    protocol_report = m.run_protocol_comparison(rounds=1)
    assert all(r["bit_identical"] for r in protocol_report["rows"])
    return report


SMOKE = {
    "bench_ablation_interleave": smoke_ablation_interleave,
    "bench_ablation_label_space": smoke_ablation_label_space,
    "bench_ablation_q_thinning": smoke_ablation_q_thinning,
    "bench_engine_batching": smoke_engine_batching,
    "bench_fading_robustness": smoke_fading_robustness,
    "bench_fig1_progress_lower_bound": smoke_fig1,
    "bench_mobility_churn": smoke_mobility_churn,
    "bench_native_kernel": smoke_native_kernel,
    "bench_service": smoke_service,
    "bench_sparse_sinr": smoke_sparse_sinr,
    "bench_table1_overview": smoke_table1_overview,
    "bench_table1_fack": smoke_table1_fack,
    "bench_table1_fapprog": smoke_table1_fapprog,
    "bench_table1_smb": smoke_table1_smb,
    "bench_table1_mmb": smoke_table1_mmb,
    "bench_table1_consensus": smoke_table1_consensus,
    "bench_table2_smb_comparison": smoke_table2,
    "bench_thm81_decay_approg": smoke_thm81,
    "bench_vectorized_stack": smoke_vectorized_stack,
}


def main() -> int:
    scripts = sorted(
        p.stem for p in (REPO / "benchmarks").glob("bench_*.py")
    )
    missing = [name for name in scripts if name not in SMOKE]
    stale = [name for name in SMOKE if name not in scripts]
    if missing or stale:
        print("bench-smoke: FAILED (registry out of sync)")
        for name in missing:
            print(f"  - benchmarks/{name}.py has no smoke entry")
        for name in stale:
            print(f"  - smoke entry {name!r} has no script")
        return 1

    failures = []
    for name in scripts:
        start = time.perf_counter()
        try:
            module = importlib.import_module(name)
            SMOKE[name](module)
        except Exception as exc:  # noqa: BLE001 - report and continue
            failures.append((name, exc))
            print(f"  FAIL {name}: {type(exc).__name__}: {exc}")
        else:
            print(f"  ok   {name} ({time.perf_counter() - start:.1f}s)")
    if failures:
        print(f"bench-smoke: FAILED ({len(failures)}/{len(scripts)})")
        return 1
    print(f"bench-smoke: OK ({len(scripts)} benchmark scripts exercised)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
