#!/usr/bin/env python
"""Stdlib-only lint fallback for environments without ruff.

``make lint`` prefers ruff (``ruff check`` + ``ruff format --check``,
configured in ``pyproject.toml``); this script approximates the
highest-signal subset with the standard library only, so the lint gate
still catches real rot in offline/air-gapped development containers:

* every ``*.py`` file must compile (syntax errors, ``E9``);
* no unused imports (the bulk of pyflakes ``F401``; ``__init__.py``
  re-export modules are exempt, and names listed in ``__all__`` count
  as used);
* no tabs in indentation, no trailing whitespace, newline at EOF
  (the mechanical half of the formatter contract).

It also runs ``python -m repro.staticcheck`` (reprolint, the
repository's invariant analyzer — itself pure stdlib) so offline
containers get the determinism/purity/concurrency rules too, not just
the mechanical ones.

A file that cannot be read or parsed is a reported failure, never a
silent pass: the mechanical line checks still run on unparseable text,
and a read error on one file does not abort the checks on the rest.

It intentionally does NOT wrap or reflow anything — formatting
authority stays with ruff in CI.
"""

from __future__ import annotations

import ast
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ROOTS = ("src", "tests", "benchmarks", "scripts", "examples")


def iter_sources():
    for root in ROOTS:
        yield from sorted((REPO / root).glob("**/*.py"))


def used_names(tree: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            # Dotted usage like `repro.geometry.deployment`: record the
            # full dotted path so `import a.b` counts as used by `a.b.c`.
            parts = []
            cur: ast.AST = node
            while isinstance(cur, ast.Attribute):
                parts.append(cur.attr)
                cur = cur.value
            if isinstance(cur, ast.Name):
                parts.append(cur.id)
                dotted = ".".join(reversed(parts))
                names.add(dotted)
                names.add(cur.id)
    return names


def exported_names(tree: ast.AST) -> set[str]:
    exported: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if "__all__" in targets and isinstance(
                node.value, (ast.List, ast.Tuple)
            ):
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        exported.add(element.value)
    return exported


def unused_imports(tree: ast.AST) -> list[tuple[int, str]]:
    used = used_names(tree)
    exported = exported_names(tree)
    problems: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name
                if bound.split(".")[0] in used or bound in used:
                    continue
                if bound in exported:
                    continue
                problems.append((node.lineno, f"unused import {bound!r}"))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                if bound in used or bound in exported:
                    continue
                problems.append((node.lineno, f"unused import {bound!r}"))
    return problems


def check_file(path: Path) -> list[str]:
    rel = path.relative_to(REPO)
    problems: list[str] = []
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        # Unreadable is a reported failure, not a crash: raising here
        # used to abort the whole run with every later file unchecked.
        return [f"{rel}: unreadable: {exc}"]
    # Mechanical line checks run whether or not the file parses — a
    # syntax error must not silently skip the formatter contract.
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.rstrip("\n")
        if stripped != stripped.rstrip():
            problems.append(f"{rel}:{lineno}: trailing whitespace")
        if stripped[: len(stripped) - len(stripped.lstrip())].count("\t"):
            problems.append(f"{rel}:{lineno}: tab in indentation")
    if text and not text.endswith("\n"):
        problems.append(f"{rel}: missing newline at end of file")
    try:
        tree = ast.parse(text, filename=str(rel))
    except SyntaxError as exc:
        problems.append(f"{rel}:{exc.lineno}: syntax error: {exc.msg}")
        return problems
    except ValueError as exc:  # null bytes and friends
        problems.append(f"{rel}: unparseable: {exc}")
        return problems
    if path.name != "__init__.py":  # packages re-export via imports
        for lineno, message in unused_imports(tree):
            problems.append(f"{rel}:{lineno}: {message}")
    return problems


def run_reprolint() -> int:
    """Run the invariant analyzer as part of the offline gate."""
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src if not existing else src + os.pathsep + existing
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.staticcheck", "--root", str(REPO)],
        env=env,
    ).returncode


def main() -> int:
    problems: list[str] = []
    count = 0
    for path in iter_sources():
        count += 1
        problems.extend(check_file(path))
    if problems:
        print(f"lint-fallback: FAILED ({len(problems)} problem(s))")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"lint-fallback: OK ({count} files; install ruff for the full gate)")
    return run_reprolint()


if __name__ == "__main__":
    sys.exit(main())
