#!/usr/bin/env python
"""service-smoke: boot the job server, submit a job, check the stream.

The end-to-end leg of the CI matrix for :mod:`repro.service`: a real
TCP server on an ephemeral loopback port, a real
:class:`~repro.service.client.ServiceClient`, a small mixed plan batch
— asserting (1) per-trial events stream back in plan order, (2) the
streamed results are dataclass-equal to in-process ``run_trials``, and
(3) a duplicate submission is answered from the result cache without
touching the worker pool.  Everything deeper (cancellation, crash
requeue, wire-format safety) lives in ``tests/test_service.py``; this
script exists so CI exercises the *server process boundary* — asyncio
front, socket framing, forked pool — as one piece.

Run via ``make service-smoke``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.decay import DecayConfig  # noqa: E402
from repro.experiments import (  # noqa: E402
    DeploymentSpec,
    ExecutionPolicy,
    TrialPlan,
    run_trials,
    seeded_plans,
)
from repro.service import ServiceClient, start_service  # noqa: E402
from repro.simulation.rng import spawn_trial_seeds  # noqa: E402

WORKERS = 2


def make_plans() -> list[TrialPlan]:
    base = TrialPlan(
        deployment=DeploymentSpec.of("uniform_disk", n=10, radius=6.0, seed=3),
        stack="decay",
        workload="local_broadcast",
        decay_config=DecayConfig(contention_bound=16.0),
        label="service-smoke",
    )
    return seeded_plans(base, spawn_trial_seeds(4, seed=19))


def main() -> int:
    plans = make_plans()
    expected = run_trials(plans)
    start = time.perf_counter()
    with start_service(workers=WORKERS) as handle:
        print(f"  server up at {handle.host}:{handle.port} "
              f"({WORKERS} workers, {time.perf_counter() - start:.1f}s)")
        client = ServiceClient(handle.host, handle.port)

        indices, results = [], []
        for event in client.submit_stream(plans, ExecutionPolicy(workers=2)):
            if event[0] == "result":
                indices.append(event[1])
                results.append(event[2])
            elif event[0] == "failed":
                print(f"service-smoke: FAILED (job failed: {event[1]})")
                return 1
        if indices != list(range(len(plans))):
            print(f"service-smoke: FAILED (stream order {indices})")
            return 1
        if results != expected:
            print("service-smoke: FAILED (served results != run_trials)")
            return 1
        print(f"  streamed {len(results)} results in plan order, "
              "bit-identical to in-process run_trials")

        duplicate = client.submit(plans)
        if not duplicate["cached"]:
            print("service-smoke: FAILED (duplicate submission missed "
                  "the result cache)")
            return 1
        stats = client.stats()
        print(f"  duplicate submission served from cache "
              f"(cache_hits={stats['cache_hits']})")
    print("service-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
