#!/usr/bin/env python
"""bench-compare: guard the columnar fast path's speedups in CI.

Compares freshly recorded benchmark JSONs (``BENCH_vectorized.json``,
``BENCH_protocols.json`` — written by
``benchmarks/bench_vectorized_stack.py`` — ``BENCH_fading.json`` from
``benchmarks/bench_fading_robustness.py``, ``BENCH_mobility.json``
from ``benchmarks/bench_mobility_churn.py`` and ``BENCH_sparse.json``
from ``benchmarks/bench_sparse_sinr.py``) against the versions
committed at a git ref (default ``HEAD``).  The gate is the
*counters-only speedup*: for every counters-only row present in both
baseline and candidate, the candidate's speedup must not fall more than
``--tolerance`` (default 20%) below the committed one.  Absolute
seconds are deliberately ignored — they track the host machine; the
vector/object ratio is what the fast path owns.

Half-open pairs skip with a warning instead of failing, so the gate
bootstraps cleanly in both directions: a candidate with no committed
baseline is a benchmark being introduced, and a committed baseline with
no freshly recorded file is a benchmark whose recorder landed earlier
in the ref than the record run (mid-PR states, partial ``--files``
invocations).  Only rows present on *both* sides gate the build — a row
that vanishes from an otherwise-recorded file still fails.

Rows may carry a ``backend`` field naming what produced the measured
ratio (``BENCH_native.json`` records ``"native"`` when the compiled
kernel ran, ``"numpy"`` under the fallback).  When baseline and fresh
row disagree on the backend, the speedup comparison is apples to
oranges — a machine without the extension would otherwise hard-fail
against a native-recorded baseline — so such pairs warn-skip instead
of gating.

Run via ``make bench-compare`` (after ``make bench-record``); the CI
``bench-regression`` job wires both together and uploads the fresh
JSONs as workflow artifacts.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def committed_json(ref: str, relpath: str) -> dict | None:
    """The file's content at ``ref``, or None if not committed there."""
    try:
        blob = subprocess.run(
            ["git", "show", f"{ref}:{relpath}"],
            cwd=REPO,
            capture_output=True,
            check=True,
        ).stdout
    except subprocess.CalledProcessError:
        return None
    return json.loads(blob)


def row_key(row: dict) -> str:
    """Stable identity of a benchmark row across schema generations."""
    if "workload" in row:
        return str(row["workload"])
    return "physical" if row.get("record_physical") else "counters-only"


def counters_only_rows(report: dict) -> dict[str, dict]:
    return {
        row_key(row): row
        for row in report.get("rows", [])
        if not row.get("record_physical", False)
    }


def row_speedup(row: dict) -> float | None:
    """The row's gating ratio, or None when it cannot gate.

    A row without a ``speedup`` key, or with a non-finite/non-positive
    value, has no usable vector/object ratio.  Callers decide the
    severity: a *baseline* that cannot gate is skipped with a warning
    (old schema generations, experimental rows), while a *candidate*
    that lost its speedup is a broken recorder and must fail loudly —
    silently skipping it would let a perf regression ride a schema bug
    through the gate.
    """
    value = row.get("speedup")
    if value is None:
        return None
    try:
        speedup = float(value)
    except (TypeError, ValueError):
        return None
    if not (speedup > 0.0) or speedup != speedup or speedup == float("inf"):
        return None
    return speedup


def compare(
    relpath: str, ref: str, tolerance: float
) -> tuple[list[str], list[str]]:
    """Return (log lines, failure lines) for one benchmark file."""
    lines: list[str] = []
    failures: list[str] = []
    candidate_path = REPO / relpath
    if not candidate_path.is_file():
        lines.append(
            f"{relpath}: WARNING — no freshly recorded file (baseline "
            "not exercised; run `make bench-record` to cover it) — "
            "skipped"
        )
        return lines, failures
    candidate = json.loads(candidate_path.read_text(encoding="utf-8"))
    baseline = committed_json(ref, relpath)
    if baseline is None:
        lines.append(
            f"{relpath}: no baseline at {ref} (new benchmark) — skipped"
        )
        return lines, failures

    base_rows = counters_only_rows(baseline)
    cand_rows = counters_only_rows(candidate)
    for key, base_row in sorted(base_rows.items()):
        cand_row = cand_rows.get(key)
        if cand_row is None:
            failures.append(
                f"{relpath}[{key}]: row present at {ref} but missing "
                "from the fresh record"
            )
            continue
        base_backend = base_row.get("backend")
        cand_backend = cand_row.get("backend")
        if (
            base_backend is not None
            and cand_backend is not None
            and base_backend != cand_backend
        ):
            # Different backends measure different code paths (e.g. a
            # fresh record on a machine without the native extension vs
            # a native-recorded baseline): the ratio comparison would
            # be meaningless, so warn-skip rather than fail.
            lines.append(
                f"{relpath}[{key}]: backend mismatch (baseline "
                f"{base_backend!r}, fresh {cand_backend!r}) — speedup "
                "gate skipped"
            )
            continue
        base_speedup = row_speedup(base_row)
        cand_speedup = row_speedup(cand_row)
        if base_speedup is None:
            lines.append(
                f"{relpath}[{key}]: baseline row has no usable speedup "
                "— skipped"
            )
            continue
        if cand_speedup is None:
            failures.append(
                f"{relpath}[{key}]: fresh row lost its speedup "
                f"(recorded {cand_row.get('speedup')!r}) — broken "
                "recorder"
            )
            continue
        floor = base_speedup * (1.0 - tolerance)
        verdict = "ok" if cand_speedup >= floor else "REGRESSED"
        lines.append(
            f"{relpath}[{key}]: speedup {cand_speedup:.2f}x vs committed "
            f"{base_speedup:.2f}x (floor {floor:.2f}x) {verdict}"
        )
        if cand_speedup < floor:
            failures.append(
                f"{relpath}[{key}]: counters-only speedup regressed "
                f">{tolerance:.0%}: {cand_speedup:.2f}x < {floor:.2f}x"
            )
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files",
        nargs="*",
        default=[
            "BENCH_vectorized.json",
            "BENCH_protocols.json",
            "BENCH_fading.json",
            "BENCH_mobility.json",
            "BENCH_sparse.json",
            "BENCH_native.json",
            "BENCH_service.json",
        ],
        help="benchmark JSONs (repo-relative) to compare",
    )
    parser.add_argument(
        "--ref", default="HEAD", help="git ref holding the baseline"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional speedup regression (default 0.2)",
    )
    args = parser.parse_args(argv)

    all_failures: list[str] = []
    recorded = 0
    for relpath in args.files:
        recorded += (REPO / relpath).is_file()
        lines, failures = compare(relpath, args.ref, args.tolerance)
        for line in lines:
            print(f"  {line}")
        all_failures.extend(failures)
    if args.files and recorded == 0:
        # Per-file skips keep mid-PR states green, but comparing
        # *nothing* means the record step never ran (broken CI wiring,
        # wrong working directory) — that must stay a loud failure.
        all_failures.append(
            "no freshly recorded benchmark file found at all — run "
            "`make bench-record` first"
        )
    if all_failures:
        print(f"bench-compare: FAILED ({len(all_failures)} problem(s))")
        for failure in all_failures:
            print(f"  - {failure}")
        return 1
    print("bench-compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
