#!/usr/bin/env python
"""native-smoke: drive the C kernel's threaded + sparse branches once.

The ThreadSanitizer leg of the CI matrix needs a short, deterministic
workload that actually exercises the code the sanitizer instruments —
the pthread pool partitioning the trials axis and the CSR decode
branch — without dragging the whole pytest session under TSan's ~10x
slowdown.  This script runs one dense Decay sweep and one sparse-exact
Decay sweep at ``--threads`` and asserts both dataclass-equal to the
single-thread run; any data race the sanitizer spots fails the process
via TSan's own exit code.

Run as ``python scripts/native_smoke.py --threads 4`` (with
``LD_PRELOAD=$(gcc -print-file-name=libtsan.so)`` when the kernel was
compiled with ``-fsanitize=thread``).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import native  # noqa: E402
from repro.experiments import (  # noqa: E402
    DeploymentSpec,
    ExecutionPolicy,
    TrialPlan,
    run_trials,
    seeded_plans,
)
from repro.simulation.rng import spawn_trial_seeds  # noqa: E402
from repro.sinr.params import SparseResolution  # noqa: E402

N = 64
RADIUS = 14.0
TRIALS = 8
SLOTS = 300


def _plans(sparse: bool) -> list[TrialPlan]:
    base = TrialPlan(
        deployment=DeploymentSpec.of(
            "uniform_disk", n=N, radius=RADIUS, seed=33
        ),
        stack="decay",
        workload="fixed_slots",
        options=TrialPlan.pack_options(slots=SLOTS),
        label="native-smoke",
        record_physical=False,
    )
    if sparse:
        # min_n=1 forces the resolver on below the production
        # crossover so the CSR branch, not the dense one, runs.
        base = dataclasses.replace(
            base,
            params=dataclasses.replace(
                base.params,
                sparse=SparseResolution(mode="exact", min_n=1),
            ),
        )
    return seeded_plans(base, spawn_trial_seeds(TRIALS, seed=5))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threads", type=int, default=4)
    args = parser.parse_args()

    if not native.available():
        print("native-smoke: kernel not built (run `make native`)")
        return 1

    for label, sparse in (("dense", False), ("sparse-exact", True)):
        plans = _plans(sparse)
        one = run_trials(
            plans, ExecutionPolicy(native=True, native_threads=1)
        )
        many = run_trials(
            plans,
            ExecutionPolicy(native=True, native_threads=args.threads),
        )
        if one != many:
            print(
                f"native-smoke: {label} results diverge at "
                f"{args.threads} threads"
            )
            return 1
        if not all(result.transmissions > 0 for result in many):
            print(f"native-smoke: {label} sweep did no work")
            return 1
        print(
            f"native-smoke: {label} ok — {TRIALS} trials x {SLOTS} "
            f"slots bit-identical at 1 vs {args.threads} threads"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
