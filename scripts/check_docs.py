#!/usr/bin/env python
"""docs-check: keep the documentation suite in lockstep with the code.

Fails (exit 1) when:

* ``README.md``, ``docs/architecture.md`` or ``docs/benchmarks.md`` is
  missing;
* a ``benchmarks/bench_*.py`` script is not mentioned in
  ``docs/benchmarks.md`` (every benchmark must be catalogued);
* ``docs/benchmarks.md`` mentions a ``bench_*.py`` name that no longer
  exists (stale catalogue entries).

Run via ``make docs-check``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
REQUIRED_DOCS = ("README.md", "docs/architecture.md", "docs/benchmarks.md")


def main() -> int:
    problems: list[str] = []

    for rel in REQUIRED_DOCS:
        if not (REPO / rel).is_file():
            problems.append(f"missing required documentation file: {rel}")

    catalogue_path = REPO / "docs" / "benchmarks.md"
    catalogue = (
        catalogue_path.read_text(encoding="utf-8")
        if catalogue_path.is_file()
        else ""
    )

    scripts = sorted(
        p.name for p in (REPO / "benchmarks").glob("bench_*.py")
    )
    for name in scripts:
        if name not in catalogue:
            problems.append(
                f"benchmarks/{name} is not documented in docs/benchmarks.md"
            )

    # `scripts/bench_*.py` helpers (the smoke runner, the compare gate)
    # are not benchmark scripts; only bare mentions are catalogue rows.
    mentioned = set(
        re.findall(r"(?<!scripts/)\bbench_[A-Za-z0-9_]+\.py\b", catalogue)
    )
    for name in sorted(mentioned.difference(scripts)):
        problems.append(
            f"docs/benchmarks.md mentions {name}, which does not exist "
            "under benchmarks/"
        )

    if problems:
        print("docs-check: FAILED")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        f"docs-check: OK ({len(scripts)} benchmark scripts catalogued, "
        f"{len(REQUIRED_DOCS)} documentation files present)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
