#!/usr/bin/env python
"""docs-check: keep the documentation suite in lockstep with the code.

Fails (exit 1) when:

* ``README.md``, ``docs/architecture.md`` or ``docs/benchmarks.md`` is
  missing;
* a ``benchmarks/bench_*.py`` script is not mentioned in
  ``docs/benchmarks.md`` (every benchmark must be catalogued);
* ``docs/benchmarks.md`` mentions a ``bench_*.py`` name that no longer
  exists (stale catalogue entries);
* a package under ``src/repro/`` is not mentioned (as ``repro.<name>``)
  in ``docs/architecture.md`` — every package, ``repro.topology``
  included, must appear in the architecture walk-through, so adding a
  subsystem without documenting it fails the gate;
* a name exported by the stable façade (``src/repro/api.py``'s
  ``__all__``) does not appear in ``docs/architecture.md`` — the public
  API's compatibility promise is only real if every exported name has
  documented semantics.  The ``__all__`` list is read via ``ast`` (this
  script never imports the package, so it works without dependencies
  installed);
* a reprolint rule registered under ``src/repro/staticcheck/`` (every
  ``rule_id="..."`` literal) is not documented in
  ``docs/invariants.md``, or the invariants catalogue names a rule ID
  that is no longer registered — the invariant catalogue and the
  analyzer must describe the same rule set.

Run via ``make docs-check``.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
REQUIRED_DOCS = (
    "README.md",
    "docs/architecture.md",
    "docs/benchmarks.md",
    "docs/invariants.md",
)
API_MODULE = "src/repro/api.py"

_RULE_ID_LITERAL = re.compile(r'rule_id="([A-Z]\d{3})"')


def registered_rule_ids() -> list[str]:
    """Every reprolint rule ID, read from the ``rule_id="..."`` literal
    registrations (no imports — same stdlib-purity rule as the rest of
    this script)."""
    ids: set[str] = set()
    for path in sorted((REPO / "src/repro/staticcheck").glob("*.py")):
        ids.update(_RULE_ID_LITERAL.findall(path.read_text(encoding="utf-8")))
    return sorted(ids)


def api_exports(path: Path) -> list[str]:
    """The façade's ``__all__``, by static AST walk (no imports)."""
    if not path.is_file():
        return []
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if "__all__" in targets and isinstance(
                node.value, (ast.List, ast.Tuple)
            ):
                return [
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ]
    return []


def main() -> int:
    problems: list[str] = []

    for rel in REQUIRED_DOCS:
        if not (REPO / rel).is_file():
            problems.append(f"missing required documentation file: {rel}")

    catalogue_path = REPO / "docs" / "benchmarks.md"
    catalogue = (
        catalogue_path.read_text(encoding="utf-8")
        if catalogue_path.is_file()
        else ""
    )

    scripts = sorted(
        p.name for p in (REPO / "benchmarks").glob("bench_*.py")
    )
    for name in scripts:
        if name not in catalogue:
            problems.append(
                f"benchmarks/{name} is not documented in docs/benchmarks.md"
            )

    # `scripts/bench_*.py` helpers (the smoke runner, the compare gate)
    # are not benchmark scripts; only bare mentions are catalogue rows.
    mentioned = set(
        re.findall(r"(?<!scripts/)\bbench_[A-Za-z0-9_]+\.py\b", catalogue)
    )
    for name in sorted(mentioned.difference(scripts)):
        problems.append(
            f"docs/benchmarks.md mentions {name}, which does not exist "
            "under benchmarks/"
        )

    architecture_path = REPO / "docs" / "architecture.md"
    architecture = (
        architecture_path.read_text(encoding="utf-8")
        if architecture_path.is_file()
        else ""
    )
    packages = sorted(
        p.parent.name
        for p in (REPO / "src" / "repro").glob("*/__init__.py")
    )
    for name in packages:
        if f"repro.{name}" not in architecture:
            problems.append(
                f"package src/repro/{name}/ is not documented in "
                "docs/architecture.md (no `repro." + name + "` mention)"
            )

    exports = api_exports(REPO / API_MODULE)
    if not exports:
        problems.append(
            f"{API_MODULE} is missing or has no parseable __all__ "
            "(the stable façade must declare its exports)"
        )
    for name in exports:
        if not re.search(rf"\b{re.escape(name)}\b", architecture):
            problems.append(
                f"repro.api export {name!r} is not documented in "
                "docs/architecture.md"
            )

    invariants_path = REPO / "docs" / "invariants.md"
    invariants = (
        invariants_path.read_text(encoding="utf-8")
        if invariants_path.is_file()
        else ""
    )
    rule_ids = registered_rule_ids()
    for rule_id in rule_ids:
        if not re.search(rf"\b{rule_id}\b", invariants):
            problems.append(
                f"reprolint rule {rule_id} is not documented in "
                "docs/invariants.md (every registered rule must be "
                "catalogued)"
            )
    for rule_id in sorted(set(re.findall(r"`([A-Z]\d{3})`", invariants))):
        if rule_id not in rule_ids:
            problems.append(
                f"docs/invariants.md documents rule {rule_id}, which is "
                "not registered under src/repro/staticcheck/"
            )

    if problems:
        print("docs-check: FAILED")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        f"docs-check: OK ({len(scripts)} benchmark scripts catalogued, "
        f"{len(packages)} packages documented, "
        f"{len(exports)} façade exports documented, "
        f"{len(rule_ids)} reprolint rules catalogued, "
        f"{len(REQUIRED_DOCS)} documentation files present)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
